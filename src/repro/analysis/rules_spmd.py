"""SPMD — the sharded-world contract checker.

Every shard runs the *same* workload builder over the *same* topology;
a create whose node lives elsewhere still mints the activity id so the
process-global id counter stays aligned across shards.  The contract
breaks the moment id-minting, activity construction, or RNG stream
consumption happens under a branch that only some shards take — the
exact bug class PR 8 shipped over: ``build_naming`` created the binder
(whose ``on_start`` minted service ids inline on its local shard only)
before the clients, skewing ghost-shard id alignment, and nothing
caught it until a 100k-name run diverged.

The rule flags any call that mints ids, creates activities, or draws
from an RNG stream inside a branch whose condition mentions shard
locality (``is_local``/``shard_of``/``local_nodes``/``shard``).  The
one sanctioned locality branch — :class:`SpmdContext.create`, where
*both* arms mint the same id — carries a reasoned suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.model import Finding
from repro.analysis.walker import Rule, SourceFile, register_rule

#: Names whose appearance in a branch condition marks it as
#: locality-dependent (different shards take different arms).
_LOCALITY_MARKERS = {"is_local", "shard_of", "local_nodes", "shard"}

#: Calls whose count or order must be identical on every shard: id
#: minting, activity construction, and RNG stream consumption.
_SENSITIVE_CALLS = {
    "make_activity_id", "create", "create_driver", "create_activity",
    "stream", "sample", "random", "randint", "choice", "shuffle",
    "randrange", "fork",
}


@register_rule
class SpmdLocality(Rule):
    id = "SPMD-locality"
    summary = (
        "workload builders may not mint ids, create activities, or "
        "draw RNG under a shard-locality branch: every shard must "
        "replay the identical construction sequence"
    )
    scope = "spmd"

    def check(self, sf: SourceFile, facts) -> Iterator[Finding]:
        reported: Set[tuple] = set()
        for node in ast.walk(sf.tree):
            guarded: List[ast.AST] = []
            test = None
            if isinstance(node, (ast.If, ast.While)):
                test = node.test
                guarded.extend(node.body)
                guarded.extend(getattr(node, "orelse", []))
            elif isinstance(node, ast.IfExp):
                test = node.test
                guarded.extend([node.body, node.orelse])
            if test is None or not _mentions_locality(test):
                continue
            for stmt in guarded:
                for inner in ast.walk(stmt):
                    name = _sensitive_call_name(inner)
                    if name is None:
                        continue
                    key = (inner.lineno, inner.col_offset)
                    if key in reported:
                        continue
                    reported.add(key)
                    yield self.finding(
                        sf, inner,
                        f"call to {name}() under a shard-locality branch: "
                        f"id-minting/creation/RNG order must be identical "
                        f"on every shard (the PR-8 ghost-id skew class) — "
                        f"run it unconditionally, or prove both arms "
                        f"advance the counters identically and suppress "
                        f"with a reason",
                    )


def _mentions_locality(test: ast.AST) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr in _LOCALITY_MARKERS:
            return True
        if isinstance(node, ast.Name) and node.id in _LOCALITY_MARKERS:
            return True
    return False


def _sensitive_call_name(node: ast.AST):
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id in _SENSITIVE_CALLS:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in _SENSITIVE_CALLS:
        return func.attr
    return None
