"""KIND — closed-set exhaustiveness over the traffic-kind registry.

Every kind the fabric routes is declared once in ``net/kinds.py``; the
rules here enforce that the declaration set stays closed and fully
wired: each registered kind must be priced by the wire-size manifest
(``KIND_SIZE_SOURCES`` in ``net/message.py``), carried by the shard
codec (``KIND_PAYLOAD_TYPES`` plus encode/decode branches in
``net/wire.py``), and dispatched by the node sink table; stray
``family.name`` string literals that never registered are flagged; and
a paired-payload registration outside the registry module is a hard
error, because ``network.py``/``node.py`` bind the dispatch-shape sets
at import (the footgun :func:`repro.net.kinds.register_kind` also
guards at runtime).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Set

from repro.analysis.facts import ProjectFacts
from repro.analysis.model import Finding
from repro.analysis.walker import ProjectRule, Rule, SourceFile, register_rule


@register_rule
class KindLiteral(Rule):
    id = "KIND-literal"
    summary = (
        "every family.name string literal in a registered family must "
        "be a registered traffic kind (or aggregate marker) — typos "
        "and unregistered kinds fail here instead of falling off the "
        "fast path at runtime"
    )
    scope = "all"

    def check(self, sf: SourceFile, facts: ProjectFacts) -> Iterator[Finding]:
        if not facts.kinds:
            return
        families = sorted(facts.families)
        if not families:
            return
        pattern = re.compile(
            r"^(?:%s)\.[a-z0-9_]+(?:\[\])?$" % "|".join(map(re.escape, families))
        )
        known = facts.kinds | facts.aggregate_markers
        doc_lines = sf.docstring_lines()
        for node in ast.walk(sf.tree):
            if not (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
            ):
                continue
            if node.lineno in doc_lines:
                continue
            if pattern.match(node.value) and node.value not in known:
                yield self.finding(
                    sf, node,
                    f"string literal {node.value!r} looks like a traffic "
                    f"kind in the registered family "
                    f"{node.value.split('.', 1)[0]!r} but is not "
                    f"registered in the kind registry",
                )


@register_rule
class KindPrice(ProjectRule):
    id = "KIND-price"
    summary = (
        "every registered kind must have a KIND_SIZE_SOURCES entry "
        "naming a real WireSizeModel attribute, so the accountant can "
        "price it"
    )

    def finalize(self, facts: ProjectFacts) -> Iterator[Finding]:
        if facts.size_entries is None:
            return
        priced = {e.kind for e in facts.size_entries if e.kind is not None}
        for reg in facts.registrations:
            if reg.kind is not None and reg.kind not in priced:
                yield Finding(
                    rule=self.id, path=reg.path, line=reg.line, col=reg.col,
                    message=(
                        f"kind {reg.kind!r} has no wire-size price: add a "
                        f"KIND_SIZE_SOURCES entry naming the WireSizeModel "
                        f"attribute that prices it"
                    ),
                )
        for entry in facts.size_entries:
            if entry.kind is None:
                yield Finding(
                    rule=self.id, path=entry.path, line=entry.line,
                    col=entry.col,
                    message=(
                        f"KIND_SIZE_SOURCES key {entry.key_repr} does not "
                        f"resolve to a registered kind constant"
                    ),
                )
                continue
            if entry.kind not in facts.kinds:
                yield Finding(
                    rule=self.id, path=entry.path, line=entry.line,
                    col=entry.col,
                    message=(
                        f"KIND_SIZE_SOURCES prices {entry.kind!r}, which "
                        f"is not a registered kind (stale entry?)"
                    ),
                )
            for attr in entry.value:
                if attr not in facts.wire_size_attrs:
                    yield Finding(
                        rule=self.id, path=entry.path, line=entry.line,
                        col=entry.col,
                        message=(
                            f"KIND_SIZE_SOURCES maps {entry.kind!r} to "
                            f"WireSizeModel.{attr}, which does not exist"
                        ),
                    )


@register_rule
class KindCodec(ProjectRule):
    id = "KIND-codec"
    summary = (
        "every registered kind must declare its payload classes in "
        "KIND_PAYLOAD_TYPES, and every payload class must have "
        "matching encode/decode branches in both wire formats"
    )

    def finalize(self, facts: ProjectFacts) -> Iterator[Finding]:
        codec = facts.codec
        if codec is None:
            return
        sets = codec.function_sets()
        union: Set[str] = set().union(*sets.values())
        # Leg 1: symmetric coverage — a class encoded or decoded
        # anywhere must be covered by all four codec functions.
        for name in sorted(union):
            missing = sorted(fn for fn, s in sets.items() if name not in s)
            if missing:
                present = sorted(fn for fn, s in sets.items() if name in s)
                line, col = codec.first_seen.get(name, (1, 0))
                yield Finding(
                    rule=self.id, path=codec.path, line=line, col=col,
                    message=(
                        f"codec coverage for {name} is asymmetric: handled "
                        f"by {', '.join(present)} but missing from "
                        f"{', '.join(missing)}"
                    ),
                )
        # Leg 2: the kind -> payload manifest.
        if facts.payload_entries is None:
            return
        declared = {
            e.kind for e in facts.payload_entries if e.kind is not None
        }
        for reg in facts.registrations:
            if reg.kind is not None and reg.kind not in declared:
                yield Finding(
                    rule=self.id, path=reg.path, line=reg.line, col=reg.col,
                    message=(
                        f"kind {reg.kind!r} declares no payload classes: "
                        f"add a KIND_PAYLOAD_TYPES entry so the codec "
                        f"contract is machine-checked"
                    ),
                )
        for entry in facts.payload_entries:
            if entry.kind is None:
                yield Finding(
                    rule=self.id, path=entry.path, line=entry.line,
                    col=entry.col,
                    message=(
                        f"KIND_PAYLOAD_TYPES key {entry.key_repr} does not "
                        f"resolve to a registered kind constant"
                    ),
                )
                continue
            if entry.kind not in facts.kinds:
                yield Finding(
                    rule=self.id, path=entry.path, line=entry.line,
                    col=entry.col,
                    message=(
                        f"KIND_PAYLOAD_TYPES declares {entry.kind!r}, "
                        f"which is not a registered kind (stale entry?)"
                    ),
                )
            for cls in entry.value:
                if cls not in union:
                    yield Finding(
                        rule=self.id, path=entry.path, line=entry.line,
                        col=entry.col,
                        message=(
                            f"payload class {cls} for kind {entry.kind!r} "
                            f"has no encode/decode branch in the wire "
                            f"codec"
                        ),
                    )


@register_rule
class KindSink(ProjectRule):
    id = "KIND-sink"
    summary = (
        "every registered kind must be dispatched by the node sink "
        "table — an unrouted kind dead-letters at the receiver"
    )

    def finalize(self, facts: ProjectFacts) -> Iterator[Finding]:
        sinks = facts.sinks
        if sinks is None:
            return
        for reg in facts.registrations:
            if reg.kind is None:
                continue
            if reg.const_name is not None and reg.const_name in sinks.names:
                continue
            if reg.kind in sinks.literals:
                continue
            yield Finding(
                rule=self.id, path=reg.path, line=reg.line, col=reg.col,
                message=(
                    f"kind {reg.kind!r} has no sink-dispatch entry in the "
                    f"node module "
                    f"({reg.const_name or reg.kind!r} is never referenced "
                    f"in {sinks.path})"
                ),
            )


@register_rule
class KindLatePaired(ProjectRule):
    id = "KIND-late-paired"
    summary = (
        "paired-payload/aggregate kinds must register at the top level "
        "of the registry module: network/node bind the dispatch-shape "
        "sets at import, so a later registration silently misses the "
        "fast path"
    )

    def finalize(self, facts: ProjectFacts) -> Iterator[Finding]:
        for reg in facts.registrations:
            if not (reg.paired or reg.aggregate is not None):
                continue
            if reg.in_defining_file and reg.top_level:
                continue
            where = (
                "inside a function/class"
                if not reg.top_level
                else "outside the registry module"
            )
            yield Finding(
                rule=self.id, path=reg.path, line=reg.line, col=reg.col,
                message=(
                    f"paired-payload kind {reg.kind or reg.const_name!r} "
                    f"registers {where}: the dispatch-shape sets are "
                    f"bound when network/node import, so this "
                    f"registration can run too late (register it at the "
                    f"top level of the kind registry module)"
                ),
            )
