"""HOT — hot-path allocation discipline.

Modules tagged ``# repro: hot-path`` sit on the per-event fast path
(the columnar fire loop, the kernel heap, the wire codec): every class
there must declare ``__slots__`` (a stray ``__dict__`` costs ~200
bytes and a dict probe per attribute on millions of instances), and
loops there must not allocate closures (a ``lambda`` inside a fire
loop is one heap allocation per event).  Independently of the tag, a
class anywhere in the deterministic core that inherits a slotted base
but forgets its own ``__slots__`` silently reintroduces the per-
instance ``__dict__`` — that is flagged too.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from repro.analysis.model import Finding
from repro.analysis.walker import Rule, SourceFile, register_rule

_EXEMPT_BASES = {
    "Exception", "BaseException", "Enum", "IntEnum", "Flag", "IntFlag",
    "NamedTuple", "Protocol", "ABC", "TypedDict",
}


@register_rule
class HotSlots(Rule):
    id = "HOT-slots"
    summary = (
        "hot-path classes must declare __slots__: every class in a "
        "module tagged '# repro: hot-path', and any core class "
        "inheriting a slotted base"
    )
    scope = "core"

    def applies(self, sf: SourceFile) -> bool:
        return self.force_scope or sf.hot_tagged or sf.in_core

    def check(self, sf: SourceFile, facts) -> Iterator[Finding]:
        slotted: Dict[str, bool] = {}
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            has_slots = _declares_slots(node)
            slotted[node.name] = has_slots
            if has_slots or _is_exempt(node):
                continue
            if sf.hot_tagged or self.force_scope:
                yield self.finding(
                    sf, node,
                    f"class {node.name} in a hot-path module does not "
                    f"declare __slots__: per-instance __dict__ costs "
                    f"memory and a dict probe per attribute on the "
                    f"per-event path",
                )
                continue
            slotted_base = _slotted_base(node, slotted)
            if slotted_base is not None:
                yield self.finding(
                    sf, node,
                    f"class {node.name} inherits slotted {slotted_base} "
                    f"but declares no __slots__, silently reintroducing "
                    f"the per-instance __dict__ (add __slots__ = () if "
                    f"it truly adds no fields)",
                )


@register_rule
class HotClosure(Rule):
    id = "HOT-closure"
    summary = (
        "no closure allocation inside loops of hot-path modules: a "
        "lambda/def in a fire loop is one heap allocation per event — "
        "hoist it or use a bound method"
    )
    scope = "hot"

    def check(self, sf: SourceFile, facts) -> Iterator[Finding]:
        reported: Set[tuple] = set()
        for node in ast.walk(sf.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            for loop in ast.walk(node):
                if not isinstance(
                    loop, (ast.For, ast.AsyncFor, ast.While)
                ):
                    continue
                for stmt in loop.body:
                    for inner in ast.walk(stmt):
                        if isinstance(
                            inner,
                            (ast.Lambda, ast.FunctionDef,
                             ast.AsyncFunctionDef),
                        ):
                            key = (inner.lineno, inner.col_offset)
                            if key in reported:
                                continue
                            reported.add(key)
                            label = (
                                "lambda"
                                if isinstance(inner, ast.Lambda)
                                else f"def {inner.name}"
                            )
                            yield self.finding(
                                sf, inner,
                                f"{label} allocated inside a loop of a "
                                f"hot-path module: one function object "
                                f"per iteration — hoist it out of the "
                                f"loop or use a bound method",
                            )


def _declares_slots(node: ast.ClassDef) -> bool:
    for item in node.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(item, ast.AnnAssign):
            if (
                isinstance(item.target, ast.Name)
                and item.target.id == "__slots__"
            ):
                return True
    for decorator in node.decorator_list:
        # @dataclass(slots=True) generates the slots.
        if isinstance(decorator, ast.Call):
            for kw in decorator.keywords:
                if (
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value
                ):
                    return True
    return False


def _base_name(base: ast.AST):
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def _is_exempt(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = _base_name(base)
        if name is None:
            continue
        if name in _EXEMPT_BASES or name.endswith(
            ("Error", "Exception", "Warning")
        ):
            return True
    return False


def _slotted_base(node: ast.ClassDef, slotted: Dict[str, bool]):
    for base in node.bases:
        name = _base_name(base)
        if name is not None and slotted.get(name):
            return name
    return None
