"""Cross-file facts for the KIND rule family.

The kind registry's invariants span four modules: kinds are *declared*
in one place (``register_kind`` calls), *priced* in the wire-size
manifest (``KIND_SIZE_SOURCES`` next to ``WireSizeModel``), *encoded*
by the shard codec (``KIND_PAYLOAD_TYPES`` plus the tagged
encode/decode branches) and *dispatched* by the node sink table
(``_kind_handlers``/``dgc_sinks``).  This pass extracts each module's
contribution from its AST — detection is content-based (a file counts
as the registry because it calls ``register_kind``, not because of its
path), so the same rules run unchanged over the real tree and over the
fixture corpus.

Nothing here imports the analyzed code; names are resolved textually
against the registry file's ``KIND_X = "family.name"`` constants, which
is exactly the convention the codebase uses (the kind constants are the
one vocabulary every module imports).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

#: Codec function names the coverage check keys on (see ANALYSIS.md):
#: the flat v1 encoder/decoder pair and the interning v2 pair.
ENCODE_V1_FN = "_encode_value"
ENCODE_V2_METHOD = "value"
DECODE_V1_FN = "_decode_value"
DECODE_V2_FN = "_decode_value_v2"


@dataclass(frozen=True)
class Registration:
    """One ``register_kind(...)`` call site."""

    kind: Optional[str]  # resolved kind string; None if unresolvable
    const_name: Optional[str]  # the KIND_X constant name, if one was used
    paired: bool
    aggregate: Optional[str]
    path: str
    line: int
    col: int
    top_level: bool  # at module top level (not inside a def/class)
    in_defining_file: bool  # the file also defines register_kind itself


@dataclass(frozen=True)
class ManifestEntry:
    """One entry of a kind-keyed manifest dict."""

    key_repr: str  # how the key is written (constant name or literal)
    kind: Optional[str]  # resolved kind string
    value: Tuple[str, ...]  # attr name(s) / class name(s)
    path: str
    line: int
    col: int


@dataclass
class CodecFacts:
    """Which composite classes each codec function branch-dispatches."""

    path: str
    encode_v1: Set[str] = field(default_factory=set)
    encode_v2: Set[str] = field(default_factory=set)
    decode_v1: Set[str] = field(default_factory=set)
    decode_v2: Set[str] = field(default_factory=set)
    #: class name -> (line, col) of its first occurrence in the file,
    #: used to anchor coverage findings somewhere clickable.
    first_seen: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def function_sets(self) -> Dict[str, Set[str]]:
        return {
            ENCODE_V1_FN: self.encode_v1,
            f"{ENCODE_V2_METHOD} (v2 encoder)": self.encode_v2,
            DECODE_V1_FN: self.decode_v1,
            DECODE_V2_FN: self.decode_v2,
        }


@dataclass
class SinkFacts:
    """KIND_* references inside the node sink-dispatch module."""

    path: str
    names: Set[str] = field(default_factory=set)
    literals: Set[str] = field(default_factory=set)


@dataclass
class ProjectFacts:
    registrations: List[Registration] = field(default_factory=list)
    kinds: Set[str] = field(default_factory=set)
    aggregate_markers: Set[str] = field(default_factory=set)
    constants: Dict[str, str] = field(default_factory=dict)
    size_entries: Optional[List[ManifestEntry]] = None
    wire_size_attrs: Set[str] = field(default_factory=set)
    payload_entries: Optional[List[ManifestEntry]] = None
    codec: Optional[CodecFacts] = None
    sinks: Optional[SinkFacts] = None

    @property
    def families(self) -> Set[str]:
        return {kind.split(".", 1)[0] for kind in self.kinds if "." in kind}


def build_facts(files) -> ProjectFacts:
    facts = ProjectFacts()
    # Pass 1: registry constants first, so later files resolve names.
    registry_files = []
    for sf in files:
        if _calls_register_kind(sf.tree):
            registry_files.append(sf)
            _collect_constants(sf.tree, facts.constants)
    for sf in registry_files:
        _collect_registrations(sf, facts)
    # Pass 2: manifests, codec, sinks.
    for sf in files:
        _collect_size_manifest(sf, facts)
        _collect_payload_manifest(sf, facts)
        _collect_codec(sf, facts)
        _collect_sinks(sf, facts)
    return facts


# ----------------------------------------------------------------------
# Collection helpers
# ----------------------------------------------------------------------


def _calls_register_kind(tree: ast.AST) -> bool:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "register_kind"
        ):
            return True
    return False


def _defines_register_kind(tree: ast.AST) -> bool:
    return any(
        isinstance(node, ast.FunctionDef) and node.name == "register_kind"
        for node in ast.walk(tree)
    )


def _collect_constants(tree: ast.AST, out: Dict[str, str]) -> None:
    for node in getattr(tree, "body", []):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if (
            isinstance(target, ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            out[target.id] = node.value.value


def _collect_registrations(sf, facts: ProjectFacts) -> None:
    defining = _defines_register_kind(sf.tree)

    def visit(node: ast.AST, top: bool) -> None:
        for child in ast.iter_child_nodes(node):
            child_top = top and not isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                 ast.Lambda),
            )
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Name)
                and child.func.id == "register_kind"
                and child.args
            ):
                arg = child.args[0]
                const_name = None
                kind: Optional[str] = None
                if isinstance(arg, ast.Name):
                    const_name = arg.id
                    kind = facts.constants.get(arg.id)
                elif isinstance(arg, ast.Constant) and isinstance(
                    arg.value, str
                ):
                    kind = arg.value
                paired = False
                aggregate = None
                for kw in child.keywords:
                    if kw.arg == "paired":
                        paired = bool(
                            isinstance(kw.value, ast.Constant)
                            and kw.value.value
                        )
                    elif kw.arg == "aggregate":
                        if isinstance(kw.value, ast.Constant) and isinstance(
                            kw.value.value, str
                        ):
                            aggregate = kw.value.value
                facts.registrations.append(
                    Registration(
                        kind=kind,
                        const_name=const_name,
                        paired=paired,
                        aggregate=aggregate,
                        path=sf.rel,
                        line=child.lineno,
                        col=child.col_offset,
                        top_level=child_top,
                        in_defining_file=defining,
                    )
                )
                if kind is not None:
                    facts.kinds.add(kind)
                if aggregate is not None:
                    facts.aggregate_markers.add(aggregate)
            visit(child, child_top)

    visit(sf.tree, True)


def _dict_entries(sf, assign: ast.Assign) -> List[ManifestEntry]:
    entries: List[ManifestEntry] = []
    value = assign.value
    if not isinstance(value, ast.Dict):
        return entries
    for key, val in zip(value.keys, value.values):
        if key is None:  # **spread — not resolvable statically
            continue
        if isinstance(key, ast.Name):
            key_repr = key.id
        elif isinstance(key, ast.Constant) and isinstance(key.value, str):
            key_repr = repr(key.value)
        else:
            key_repr = ast.dump(key)
        values: List[str] = []
        if isinstance(val, ast.Constant) and isinstance(val.value, str):
            values.append(val.value)
        elif isinstance(val, (ast.Tuple, ast.List)):
            for element in val.elts:
                if isinstance(element, ast.Name):
                    values.append(element.id)
        elif isinstance(val, ast.Name):
            values.append(val.id)
        entries.append(
            ManifestEntry(
                key_repr=key_repr,
                kind=None,  # resolved below by the caller
                value=tuple(values),
                path=sf.rel,
                line=key.lineno,
                col=key.col_offset,
            )
        )
    return entries


def _resolve_entry(entry: ManifestEntry, facts: ProjectFacts) -> ManifestEntry:
    if entry.key_repr.startswith("'") or entry.key_repr.startswith('"'):
        kind = entry.key_repr[1:-1]
    else:
        kind = facts.constants.get(entry.key_repr)
    return ManifestEntry(
        key_repr=entry.key_repr,
        kind=kind,
        value=entry.value,
        path=entry.path,
        line=entry.line,
        col=entry.col,
    )


def _find_assign(tree: ast.AST, name: str) -> Optional[ast.Assign]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node
    return None


def _collect_size_manifest(sf, facts: ProjectFacts) -> None:
    assign = _find_assign(sf.tree, "KIND_SIZE_SOURCES")
    if assign is None:
        return
    entries = [
        _resolve_entry(e, facts)
        for e in _dict_entries(sf, assign)
    ]
    facts.size_entries = (facts.size_entries or []) + entries
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.ClassDef) and node.name == "WireSizeModel":
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    facts.wire_size_attrs.add(item.name)
                elif isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    facts.wire_size_attrs.add(item.target.id)
                elif isinstance(item, ast.Assign):
                    for target in item.targets:
                        if isinstance(target, ast.Name):
                            facts.wire_size_attrs.add(target.id)


def _collect_payload_manifest(sf, facts: ProjectFacts) -> None:
    assign = _find_assign(sf.tree, "KIND_PAYLOAD_TYPES")
    if assign is None:
        return
    entries = [
        _resolve_entry(e, facts)
        for e in _dict_entries(sf, assign)
    ]
    facts.payload_entries = (facts.payload_entries or []) + entries


def _is_composite_name(name: str) -> bool:
    return (
        bool(name)
        and name[0].isupper()
        and not name.endswith(("Error", "Exception", "Warning"))
    )


def _is_comparison_classes(node: ast.Compare) -> Set[str]:
    if not any(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops):
        return set()
    names: Set[str] = set()
    for side in [node.left, *node.comparators]:
        if isinstance(side, ast.Name) and _is_composite_name(side.id):
            names.add(side.id)
    return names


def _collect_codec(sf, facts: ProjectFacts) -> None:
    has_encode = any(
        isinstance(n, ast.FunctionDef) and n.name == ENCODE_V1_FN
        for n in ast.walk(sf.tree)
    )
    has_decode = any(
        isinstance(n, ast.FunctionDef) and n.name == DECODE_V1_FN
        for n in ast.walk(sf.tree)
    )
    if not (has_encode and has_decode):
        return
    codec = CodecFacts(path=sf.rel)
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Name) and _is_composite_name(node.id):
            codec.first_seen.setdefault(
                node.id, (node.lineno, node.col_offset)
            )
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if (
                    isinstance(item, ast.FunctionDef)
                    and item.name == ENCODE_V2_METHOD
                ):
                    codec.encode_v2 |= _branch_classes(item)
        elif isinstance(node, ast.FunctionDef):
            if node.name == ENCODE_V1_FN:
                codec.encode_v1 |= _branch_classes(node)
            elif node.name == DECODE_V1_FN:
                codec.decode_v1 |= _constructed_classes(node)
            elif node.name == DECODE_V2_FN:
                codec.decode_v2 |= _constructed_classes(node)
    facts.codec = codec


def _branch_classes(fn: ast.FunctionDef) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Compare):
            names |= _is_comparison_classes(node)
    return names


def _constructed_classes(fn: ast.FunctionDef) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and _is_composite_name(node.func.id)
        ):
            names.add(node.func.id)
    return names


def _collect_sinks(sf, facts: ProjectFacts) -> None:
    found = False
    for node in ast.walk(sf.tree):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name == "_kind_handlers":
                found = True
    if not found:
        return
    sinks = facts.sinks or SinkFacts(path=sf.rel)
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Name) and node.id.startswith("KIND_"):
            sinks.names.add(node.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            if "." in node.value and " " not in node.value:
                sinks.literals.add(node.value)
    facts.sinks = sinks
