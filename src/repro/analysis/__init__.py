"""repro.analysis — fabric-invariant static analyzer.

Pure-AST lint for the properties the test suite can only catch after
the fact: determinism of the core (DET), closed-set exhaustiveness of
the traffic-kind registry (KIND), the SPMD shard contract (SPMD), and
hot-path allocation discipline (HOT).  It never imports the code it
analyzes.  Run ``python -m repro.analysis src/repro`` or
``harness analyze``; rules and suppression syntax are documented in
ANALYSIS.md.
"""

from repro.analysis.model import AnalysisResult, Finding, Suppression
from repro.analysis.report import render_human, render_json
from repro.analysis.walker import (
    Analyzer,
    all_rule_ids,
    rule_summaries,
    run_analysis,
)

__all__ = [
    "AnalysisResult",
    "Analyzer",
    "Finding",
    "Suppression",
    "all_rule_ids",
    "render_human",
    "render_json",
    "rule_summaries",
    "run_analysis",
]
