"""The analyzer engine: file loading, rule registry, suppression model.

The analyzer is a pure-AST pass — it never imports the code under
analysis, so a broken module can't crash it and the pass is safe to run
on any tree.  One run is:

1. collect ``.py`` files under the requested paths (sorted, so runs are
   deterministic — the analyzer holds itself to the invariants it
   enforces);
2. parse each into a :class:`SourceFile` (syntax errors become
   ``META-parse`` findings, not crashes) and scan its comments for
   ``# repro: allow[...]`` suppressions and the ``# repro: hot-path``
   module tag;
3. build cross-file :class:`~repro.analysis.facts.ProjectFacts` (the
   kind registry, size/payload manifests, codec coverage, sink
   references);
4. run every selected rule — per-file rules over their applicable
   files, project rules over the facts;
5. drop findings covered by a suppression and sort the rest.

Rule scoping follows the codebase's invariant boundaries: the
*deterministic core* is ``core/``, ``sim/``, ``net/``, ``shard/`` and
``runtime/`` (the DET and HOT families apply there), the SPMD contract
applies to ``shard/workloads.py``, and the KIND family applies
everywhere.  ``force_scope=True`` treats every file as in every scope —
that is how the fixture corpus under ``tests/fixtures/analysis/``
exercises rules without replicating the package layout.
"""

from __future__ import annotations

import ast
import io
import time
import tokenize
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

from repro.analysis.model import (
    HOT_TAG_RE,
    SUPPRESSION_RE,
    AnalysisResult,
    Finding,
    Suppression,
)

#: Subpackages forming the deterministic core: replay determinism and
#: the bit-identical equivalence suites depend on every line here.
CORE_DIRS = ("core", "sim", "net", "shard", "runtime")

#: The SPMD contract (ghost creates mint identical ids on every shard)
#: binds the workload builders; see ``repro/shard/workloads.py``.
SPMD_FILES = ("shard/workloads.py",)


class SourceFile:
    """One parsed source file plus its comment-derived metadata."""

    def __init__(self, path: Path, rel: str, text: str, tree: ast.AST) -> None:
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree
        self.suppressions: List[Suppression] = []
        self.hot_tagged = False
        self._scan_comments()

    # -- scoping -------------------------------------------------------

    @property
    def pkg_rel(self) -> str:
        """Path relative to the ``repro`` package root when the scanned
        tree contains one (``.../repro/net/wire.py`` -> ``net/wire.py``);
        the plain relative path otherwise (fixture corpora)."""
        parts = self.rel.replace("\\", "/").split("/")
        for position in range(len(parts) - 1, -1, -1):
            if parts[position] == "repro":
                return "/".join(parts[position + 1:])
        return "/".join(parts)

    @property
    def in_core(self) -> bool:
        head = self.pkg_rel.split("/", 1)[0]
        return head in CORE_DIRS

    @property
    def is_spmd(self) -> bool:
        return self.pkg_rel in SPMD_FILES

    # -- comments ------------------------------------------------------

    def _scan_comments(self) -> None:
        # Tokenize so only real comments count: the tag and suppression
        # markers show up inside docstrings and string literals too (this
        # package documents them), and those must not trigger.
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(self.text).readline)
            )
        except (tokenize.TokenError, IndentationError):
            return
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            lineno, col = tok.start
            if HOT_TAG_RE.search(tok.string):
                self.hot_tagged = True
            match = SUPPRESSION_RE.search(tok.string)
            if match is None:
                continue
            rules = tuple(
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            )
            alone = tok.line[:col].strip() == ""
            self.suppressions.append(
                Suppression(
                    rules=rules,
                    reason=match.group(2).strip(),
                    comment_line=lineno,
                    target_line=lineno + 1 if alone else lineno,
                )
            )

    def docstring_lines(self) -> Set[int]:
        """Line numbers covered by module/class/function docstrings —
        string constants there are documentation, not code."""
        covered: Set[int] = set()
        for node in ast.walk(self.tree):
            if not isinstance(
                node, (ast.Module, ast.ClassDef, ast.FunctionDef,
                       ast.AsyncFunctionDef)
            ):
                continue
            body = getattr(node, "body", None)
            if not body:
                continue
            head = body[0]
            if (
                isinstance(head, ast.Expr)
                and isinstance(head.value, ast.Constant)
                and isinstance(head.value.value, str)
            ):
                covered.update(
                    range(head.lineno, (head.end_lineno or head.lineno) + 1)
                )
        return covered


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------


class Rule:
    """Base per-file rule: ``check`` yields findings for one file."""

    id: str = ""
    summary: str = ""
    #: Which scope gates ``check``: "all", "core", "spmd", "hot".
    scope: str = "all"

    def __init__(self, force_scope: bool = False) -> None:
        self.force_scope = force_scope

    def applies(self, sf: SourceFile) -> bool:
        if self.force_scope:
            return True
        if self.scope == "core":
            return sf.in_core
        if self.scope == "spmd":
            return sf.is_spmd
        if self.scope == "hot":
            return sf.hot_tagged
        return True

    def check(self, sf: SourceFile, facts) -> Iterator[Finding]:
        return iter(())

    def finding(
        self, sf: SourceFile, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=sf.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class ProjectRule(Rule):
    """A rule evaluated once over the cross-file facts."""

    project = True

    def finalize(self, facts) -> Iterator[Finding]:
        return iter(())


_RULE_CLASSES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule class {cls.__name__} has no id")
    if cls.id in _RULE_CLASSES:
        raise ValueError(f"rule {cls.id!r} registered twice")
    _RULE_CLASSES[cls.id] = cls
    return cls


def all_rule_ids() -> Tuple[str, ...]:
    _load_rule_modules()
    return tuple(sorted(_RULE_CLASSES))


def rule_summaries() -> Dict[str, str]:
    _load_rule_modules()
    return {rule_id: cls.summary for rule_id, cls in
            sorted(_RULE_CLASSES.items())}


def _load_rule_modules() -> None:
    # Rule modules self-register on import; imported lazily so the
    # model/walker layer stays import-cycle-free.
    from repro.analysis import rules_det, rules_hot, rules_kind, rules_spmd  # noqa: F401


#: Engine-emitted pseudo-rules: parse failures and suppression hygiene.
#: Registered so ``--rule`` validation and ``--list-rules`` know them.
META_PARSE = "META-parse"
META_SUPPRESSION = "META-suppression"


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------


class Analyzer:
    """One configured analysis pass; ``run()`` executes it."""

    def __init__(
        self,
        paths: Sequence[str],
        root: Optional[str] = None,
        rules: Optional[Sequence[str]] = None,
        force_scope: bool = False,
    ) -> None:
        _load_rule_modules()
        self.paths = [Path(p) for p in paths]
        self.root = Path(root) if root is not None else _common_root(self.paths)
        known = set(_RULE_CLASSES) | {META_PARSE, META_SUPPRESSION}
        if rules is None:
            selected = sorted(known)
        else:
            unknown = sorted(set(rules) - known)
            if unknown:
                raise ValueError(
                    f"unknown rule id(s): {', '.join(unknown)} "
                    f"(known: {', '.join(sorted(known))})"
                )
            selected = sorted(set(rules))
        self.selected = tuple(selected)
        self.force_scope = force_scope

    # -- file collection ----------------------------------------------

    def collect_files(self) -> List[Path]:
        seen: Set[Path] = set()
        ordered: List[Path] = []
        for path in self.paths:
            if path.is_file() and path.suffix == ".py":
                candidates: Iterable[Path] = [path]
            elif path.is_dir():
                candidates = sorted(path.rglob("*.py"))
            else:
                raise FileNotFoundError(f"no such file or directory: {path}")
            for candidate in candidates:
                resolved = candidate.resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    ordered.append(candidate)
        return ordered

    def _relpath(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    # -- the pass ------------------------------------------------------

    def run(self) -> AnalysisResult:
        started = time.monotonic()  # repro: allow[DET-wallclock] analyzer tooling: elapsed time is reported, never scheduled on
        findings: List[Finding] = []
        files: List[SourceFile] = []
        for path in self.collect_files():
            rel = self._relpath(path)
            text = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(text, filename=str(path))
            except SyntaxError as exc:
                if META_PARSE in self.selected:
                    findings.append(
                        Finding(
                            rule=META_PARSE,
                            path=rel,
                            line=exc.lineno or 1,
                            col=(exc.offset or 1) - 1,
                            message=f"file does not parse: {exc.msg}",
                        )
                    )
                continue
            files.append(SourceFile(path, rel, text, tree))

        from repro.analysis.facts import build_facts

        facts = build_facts(files)

        for rule_id in self.selected:
            cls = _RULE_CLASSES.get(rule_id)
            if cls is None:  # META pseudo-rules
                continue
            rule = cls(force_scope=self.force_scope)
            if isinstance(rule, ProjectRule):
                findings.extend(rule.finalize(facts))
            else:
                for sf in files:
                    if rule.applies(sf):
                        findings.extend(rule.check(sf, facts))

        if META_SUPPRESSION in self.selected:
            findings.extend(self._check_suppressions(files))

        kept, suppressed = self._apply_suppressions(files, findings)
        kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return AnalysisResult(
            root=str(self.root),
            findings=kept,
            files_scanned=len(files),
            rules_run=self.selected,
            suppressed_count=suppressed,
            elapsed_s=time.monotonic() - started,  # repro: allow[DET-wallclock] analyzer tooling: elapsed time is reported, never scheduled on
        )

    def _check_suppressions(self, files: List[SourceFile]) -> List[Finding]:
        known = set(_RULE_CLASSES) | {META_PARSE, META_SUPPRESSION}
        out: List[Finding] = []
        for sf in files:
            for sup in sf.suppressions:
                if not sup.reason:
                    out.append(
                        Finding(
                            rule=META_SUPPRESSION,
                            path=sf.rel,
                            line=sup.comment_line,
                            col=0,
                            message=(
                                "suppression must carry a reason: "
                                "# repro: allow[RULE-id] <why this is safe>"
                            ),
                        )
                    )
                for rule_id in sup.rules:
                    if rule_id not in known:
                        out.append(
                            Finding(
                                rule=META_SUPPRESSION,
                                path=sf.rel,
                                line=sup.comment_line,
                                col=0,
                                message=(
                                    f"suppression names unknown rule "
                                    f"{rule_id!r}"
                                ),
                            )
                        )
        return out

    def _apply_suppressions(
        self, files: List[SourceFile], findings: List[Finding]
    ) -> Tuple[List[Finding], int]:
        by_path: Dict[str, List[Suppression]] = {
            sf.rel: sf.suppressions for sf in files
        }
        kept: List[Finding] = []
        suppressed = 0
        for finding in findings:
            # Suppression hygiene findings are never self-suppressible.
            if finding.rule == META_SUPPRESSION:
                kept.append(finding)
                continue
            sups = by_path.get(finding.path, ())
            if any(s.covers(finding.rule, finding.line) and s.reason
                   for s in sups):
                suppressed += 1
            else:
                kept.append(finding)
        return kept, suppressed


def _common_root(paths: Sequence[Path]) -> Path:
    if not paths:
        return Path(".")
    head = paths[0]
    return head if head.is_dir() else head.parent


def run_analysis(
    paths: Sequence[str],
    root: Optional[str] = None,
    rules: Optional[Sequence[str]] = None,
    force_scope: bool = False,
) -> AnalysisResult:
    """Convenience wrapper: configure and run one pass."""
    return Analyzer(
        paths, root=root, rules=rules, force_scope=force_scope
    ).run()
