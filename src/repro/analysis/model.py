"""Data model of the fabric-invariant analyzer.

A :class:`Finding` is one rule violation anchored to a source line; a
:class:`Suppression` is one ``# repro: allow[RULE-id] reason`` comment.
Both are plain frozen records so reporters and tests can compare them
structurally — the engine (:mod:`repro.analysis.walker`) owns all
behavior.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    ``path`` is the file's path relative to the analysis root (stable
    across machines, so JSON reports diff cleanly in CI artifacts);
    ``line``/``col`` are 1-based line and 0-based column, matching
    ``ast`` node coordinates.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


@dataclass(frozen=True)
class Suppression:
    """One inline ``# repro: allow[...]`` comment.

    ``rules`` is the tuple of rule ids the comment names; ``target_line``
    is the line whose findings it silences (the comment's own line for a
    trailing comment, the next line for a comment standing alone);
    ``reason`` is the free text after the bracket — mandatory, enforced
    by the ``META-suppression`` rule.
    """

    rules: Tuple[str, ...]
    reason: str
    comment_line: int
    target_line: int

    def covers(self, rule: str, line: int) -> bool:
        return line == self.target_line and rule in self.rules


#: Matches ``repro: allow[DET-entropy] why`` / ``repro: allow[A,B] why``
#: comments (hash-prefixed in source).
SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s-]+)\]\s*(.*)$"
)

#: Matches the ``repro: hot-path`` comment tag marking a module as hot:
#: every class there must be slotted and loops may not allocate
#: closures (the HOT rule family).
HOT_TAG_RE = re.compile(r"#\s*repro:\s*hot-path\b")


@dataclass
class AnalysisResult:
    """What one analyzer run produced, for reporters and callers."""

    root: str
    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: Tuple[str, ...] = ()
    suppressed_count: int = 0
    elapsed_s: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.findings
