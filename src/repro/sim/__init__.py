"""Deterministic discrete-event simulation substrate.

The paper evaluates the DGC on the Grid'5000 testbed; this package provides
the deterministic, laptop-scale equivalent: a heap-based event kernel
(:mod:`repro.sim.kernel`), the beat-bucket scheduler that batches aligned
heartbeats into one heap event per bucket (:mod:`repro.sim.beats`),
periodic timers used for the TTB heartbeat (:mod:`repro.sim.timers`),
reproducible per-component random streams (:mod:`repro.sim.rng`) and
structured traces (:mod:`repro.sim.tracing`).
"""

from repro.sim.beats import BeatHandle, BeatWheel
from repro.sim.kernel import Event, SimKernel
from repro.sim.timers import PeriodicTimer
from repro.sim.rng import RngRegistry
from repro.sim.tracing import TraceEvent, Tracer

__all__ = [
    "BeatHandle",
    "BeatWheel",
    "Event",
    "SimKernel",
    "PeriodicTimer",
    "RngRegistry",
    "TraceEvent",
    "Tracer",
]
