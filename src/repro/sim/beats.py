"""The beat-bucket scheduler: a timer wheel for periodic callbacks.

The DGC gives every active object a heartbeat (the TTB broadcast, paper
Alg. 2).  Scheduling each heartbeat as its own kernel event means the
event heap permanently holds O(activities) timer entries and churns
through thousands of independent heartbeat events per beat period at
paper scale (6401 activities, Fig. 10).

The :class:`BeatWheel` coalesces every periodic callback sharing a
``(period, fire_time)`` bucket into **one** heap event per bucket per
tick:

* callbacks whose phases land in the same bucket (e.g. start jitter
  quantized to a slot grid — :attr:`repro.core.config.DgcConfig.beat_slots`)
  ride a single kernel event, turning heartbeat scheduling from
  O(activities) heap traffic into O(buckets);
* register/deregister are O(1) dict operations — no heap surgery when a
  doomed activity stops beating, and a bucket whose members all left is
  skipped lazily when its event fires (the kernel's cancelled-event
  idiom, without allocating cancellable events at all);
* intra-bucket order is deterministic: members are seq-stamped at
  registration and kept in insertion order, which is exactly the order
  the equivalent per-event timers would fire in (FIFO among same-time
  events), so fixed-seed simulations are bit-identical with per-event
  scheduling;
* a member may change period (:meth:`BeatHandle.set_period`, the
  dynamic-TTB extension of paper Sec. 7.1); it is re-bucketed at its
  next fire, matching the per-event timer's re-arm semantics.

The wheel is hierarchical in the sense of a classic hashed timer wheel:
the outer level is the kernel's time-ordered heap (one entry per live
bucket), the inner level is the bucket's ordered member table; the
kernel only ever sees the outer level.
"""
# repro: hot-path — every class slotted, no closure allocation in loops (HOT rules)

from __future__ import annotations

import itertools
from contextlib import nullcontext
from typing import Callable, ContextManager, Dict, Optional, Tuple

from repro.errors import SchedulingInPastError, SimulationError


class SlotController:
    """Adaptive beat-slot sizing for ``DgcConfig.beat_slots="auto"``.

    The slot grid trades desynchronisation granularity against scheduler
    batching: too few slots on a busy node and broadcasts clump; too many
    on a quiet node and every bucket holds one member, wasting the wheel.
    The controller picks the grid from the node's **live activity count**
    at each registration, so the grid re-buckets as the population grows
    and shrinks: early registrations on a filling node get a coarse grid,
    later ones a finer grid, targeting ``activities_per_slot`` members
    per bucket throughout.

    Slot counts are powers of two, for two reasons: hysteresis (the grid
    only changes when the population doubles/halves, so registration
    order perturbations do not thrash it) and nesting — a coarse grid's
    phase boundaries are a subset of every finer grid's, so beats
    quantized under different epochs still share buckets whenever their
    phases coincide.

    Deterministic by construction (pure function of the count), so
    batched and per-event schedulers resolve identical grids and
    fixed-seed equivalence holds under ``"auto"`` exactly as under a
    pinned integer.
    """

    __slots__ = ("min_slots", "max_slots", "activities_per_slot")

    def __init__(
        self,
        *,
        min_slots: int = 4,
        max_slots: int = 64,
        activities_per_slot: int = 8,
    ) -> None:
        if min_slots < 1 or max_slots < min_slots:
            raise SimulationError(
                f"invalid slot bounds [{min_slots}, {max_slots}]"
            )
        if activities_per_slot < 1:
            raise SimulationError(
                f"activities_per_slot must be >= 1, got {activities_per_slot}"
            )
        self.min_slots = min_slots
        self.max_slots = max_slots
        self.activities_per_slot = activities_per_slot

    def slots_for(self, activity_count: int) -> int:
        """The slot grid for a node currently hosting ``activity_count``
        live activities: the smallest power of two putting at most
        ``activities_per_slot`` members in a bucket, clamped."""
        needed = max(1, -(-activity_count // self.activities_per_slot))
        slots = 1 << (needed - 1).bit_length()
        if slots < self.min_slots:
            return self.min_slots
        if slots > self.max_slots:
            return self.max_slots
        return slots


class BeatHandle:
    """One periodic registration; returned by :meth:`BeatWheel.register`.

    Mirrors the :class:`repro.sim.timers.PeriodicTimer` surface
    (``ticks``, ``stopped``, ``period``, ``stop``, ``set_period``) so the
    layers above can treat wheel-batched and per-event scheduling
    interchangeably.
    """

    __slots__ = ("_wheel", "seq", "callback", "_period", "label", "ticks",
                 "_stopped", "_bucket")

    def __init__(
        self,
        wheel: "BeatWheel",
        seq: int,
        callback: Callable[[], None],
        period: float,
        label: str,
    ) -> None:
        self._wheel = wheel
        self.seq = seq
        self.callback = callback
        self._period = period
        self.label = label
        self.ticks = 0
        self._stopped = False
        self._bucket: Optional["_Bucket"] = None

    @property
    def period(self) -> float:
        return self._period

    @property
    def stopped(self) -> bool:
        return self._stopped

    @property
    def next_fire_time(self) -> Optional[float]:
        """When this member next ticks (``None`` once stopped)."""
        bucket = self._bucket
        return bucket.fire_at if bucket is not None else None

    def stop(self) -> None:
        """Deregister in O(1); the callback never fires again.

        Unlike cancelling a per-event timer, nothing is left behind in
        the kernel heap: the member is removed from its bucket and the
        bucket's event simply finds one fewer member when it fires.
        """
        self._wheel._deregister(self)

    def set_period(self, period: float) -> None:
        """Change the period; takes effect from the *next* re-arm,
        exactly like :meth:`PeriodicTimer.set_period` — the member is
        re-bucketed under the new period when it next fires (dynamic-TTB,
        paper Sec. 7.1)."""
        if period <= 0:
            raise SimulationError(
                f"beat period must be positive, got {period}"
            )
        self._period = period


class _Bucket:
    """All members sharing one (period, fire_time) coordinate."""

    __slots__ = ("fire_at", "period", "members")

    def __init__(self, fire_at: float, period: float) -> None:
        self.fire_at = fire_at
        self.period = period
        #: seq -> handle, in registration order (deterministic firing).
        self.members: Dict[int, BeatHandle] = {}


class BeatWheel:
    """Coalesces periodic callbacks into one kernel event per bucket.

    ``kernel`` needs ``now`` and ``schedule_fire_at(time, callback,
    args)`` — both the simulation and the live kernel qualify.  Pass a
    ``lock`` when registrations may race the firing thread (the live
    kernel's scheduler thread); it must be *reentrant* (callbacks fired
    under the lock may register/stop members).  The simulation kernel is
    single-threaded and uses no lock.
    """

    __slots__ = (
        "_kernel", "_lock", "_seq", "_buckets", "_registered",
        "_bucket_events",
    )

    def __init__(self, kernel, lock: Optional[ContextManager] = None) -> None:
        self._kernel = kernel
        self._lock: ContextManager = lock if lock is not None else nullcontext()
        self._seq = itertools.count()
        self._buckets: Dict[Tuple[float, float], _Bucket] = {}
        self._registered = 0
        self._bucket_events = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def registered_count(self) -> int:
        """Total registrations ever made."""
        return self._registered

    @property
    def bucket_event_count(self) -> int:
        """Kernel events scheduled on behalf of buckets — the heap
        traffic this wheel generates (compare with ``registered_count``
        times ticks for the per-event equivalent)."""
        return self._bucket_events

    @property
    def live_bucket_count(self) -> int:
        return len(self._buckets)

    def member_count(self) -> int:
        """Live members across all buckets (O(buckets))."""
        return sum(len(b.members) for b in self._buckets.values())

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(
        self,
        period: float,
        callback: Callable[[], None],
        *,
        first_delay: Optional[float] = None,
        label: str = "beat",
    ) -> BeatHandle:
        """Register ``callback`` to fire every ``period`` seconds, first
        in ``first_delay`` seconds (default: one full period)."""
        if period <= 0:
            raise SimulationError(
                f"beat period must be positive, got {period}"
            )
        if first_delay is not None and first_delay < 0:
            raise SchedulingInPastError(
                f"cannot register {label!r} with negative first delay "
                f"{first_delay}"
            )
        with self._lock:
            handle = BeatHandle(
                self, next(self._seq), callback, period, label
            )
            first = period if first_delay is None else first_delay
            self._add(handle, period, self._kernel.now + first)
            self._registered += 1
        return handle

    def _add(self, handle: BeatHandle, period: float, fire_at: float) -> None:
        key = (period, fire_at)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = _Bucket(fire_at, period)
            self._buckets[key] = bucket
            self._kernel.schedule_fire_at(fire_at, self._fire, (key,))
            self._bucket_events += 1
        bucket.members[handle.seq] = handle
        handle._bucket = bucket

    def _deregister(self, handle: BeatHandle) -> None:
        with self._lock:
            if handle._stopped:
                return
            handle._stopped = True
            bucket = handle._bucket
            if bucket is not None:
                bucket.members.pop(handle.seq, None)
                handle._bucket = None
            # An emptied bucket stays keyed until its event fires (the
            # event is fire-and-forget); the fire finds it empty and
            # lets it die without re-arming.

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------

    def drain(self) -> int:
        """Stop every member and drop every bucket; returns the number
        of members stopped.

        Teardown hook (the live kernel's ``shutdown`` calls this): a
        bucket event still sitting in a kernel heap after a drain finds
        its key gone and does nothing — no callback can fire into a
        torn-down world.  New registrations remain possible afterwards;
        draining empties the wheel, it does not poison it.
        """
        with self._lock:
            stopped = 0
            for bucket in self._buckets.values():
                for handle in bucket.members.values():
                    handle._stopped = True
                    handle._bucket = None
                    stopped += 1
                bucket.members.clear()
            self._buckets.clear()
            return stopped

    def _fire(self, key: Tuple[float, float]) -> None:
        with self._lock:
            # ``pop`` with a default: the wheel may have been drained
            # (kernel teardown) between this event's scheduling and its
            # firing — a missing key means every member is stopped.
            bucket = self._buckets.pop(key, None)
            if bucket is None or not bucket.members:
                return
            fire_at = bucket.fire_at
            # Snapshot: a member's callback may stop (or re-period) any
            # other member of this same bucket mid-iteration.
            members = list(bucket.members.values())
            error: Optional[Exception] = None
            for handle in members:
                if handle._stopped:
                    continue
                # Re-arm before the callback (matching PeriodicTimer):
                # a callback that stops its own timer must cancel the
                # *next* tick, and the period change of dynamic TTB
                # takes effect here, at the re-arm — re-bucketing the
                # member in O(1).
                period = handle._period
                self._add(handle, period, fire_at + period)
                handle.ticks += 1
                try:
                    handle.callback()
                except Exception as exc:
                    # One member's failure must not silence its bucket
                    # mates (per-event timers were isolated): keep
                    # re-arming and firing the rest, then surface the
                    # first error to the kernel.
                    if error is None:
                        error = exc
            if error is not None:
                raise error
