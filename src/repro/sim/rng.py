"""Deterministic per-component random streams.

Experiments must be reproducible run-to-run (the paper reports averages and
standard deviations over 3 runs; we re-run with three seeds).  Handing every
component its own :class:`random.Random` derived from a root seed and a
stable name keeps streams independent: adding a new consumer does not
perturb existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory of named, independently-seeded :class:`random.Random` streams."""

    def __init__(self, root_seed: int) -> None:
        self._root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(
            f"{self._root_seed}:{name}".encode("utf-8")
        ).digest()
        seed = int.from_bytes(digest[:8], "big")
        stream = random.Random(seed)
        self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry, e.g. one per experiment repetition."""
        digest = hashlib.sha256(
            f"{self._root_seed}:fork:{name}".encode("utf-8")
        ).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
