"""Deterministic per-component random streams.

Experiments must be reproducible run-to-run (the paper reports averages and
standard deviations over 3 runs; we re-run with three seeds).  Handing every
component its own :class:`random.Random` derived from a root seed and a
stable name keeps streams independent: adding a new consumer does not
perturb existing ones.

:class:`ZipfSampler` adds skewed index draws for workloads that model
realistic name popularity (a handful of hot services, a long cold tail)
on top of any stream the registry hands out — the skew is a pure
function of ``(n, s)``, so two equally-seeded streams sample identical
sequences.
"""

from __future__ import annotations

import hashlib
import random  # repro: allow[DET-entropy] this module IS the sanctioned router: streams are seeded below, never from process entropy
from bisect import bisect_left
from typing import Dict, List


class RngRegistry:
    """Factory of named, independently-seeded :class:`random.Random` streams."""

    def __init__(self, root_seed: int) -> None:
        self._root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(
            f"{self._root_seed}:{name}".encode("utf-8")
        ).digest()
        seed = int.from_bytes(digest[:8], "big")
        stream = random.Random(seed)  # repro: allow[DET-entropy] seeded from the root-seed digest above, not process entropy
        self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry, e.g. one per experiment repetition."""
        digest = hashlib.sha256(
            f"{self._root_seed}:fork:{name}".encode("utf-8")
        ).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))


class ZipfSampler:
    """Deterministic Zipf-skewed index draws over ``range(n)``.

    Rank ``k`` (0 = most popular) is drawn with probability proportional
    to ``1 / (k + 1) ** s``.  Sampling is inverse-CDF over precomputed
    cumulative weights (:func:`bisect.bisect_left`), so one draw costs
    one ``rng.random()`` call plus an O(log n) search and the sequence is
    a pure function of the stream's seed — the same determinism contract
    every ``RngRegistry`` stream carries.

    ``s = 0`` degenerates to the uniform distribution (every rank weight
    1), so workloads can expose the skew as a knob whose zero value means
    "unskewed" without switching sampling code paths.
    """

    __slots__ = ("n", "s", "_cumulative", "_total")

    def __init__(self, n: int, s: float) -> None:
        if n <= 0:
            raise ValueError(f"ZipfSampler needs n >= 1, got {n}")
        if s < 0:
            raise ValueError(f"ZipfSampler needs s >= 0, got {s}")
        self.n = n
        self.s = s
        cumulative: List[float] = []
        total = 0.0
        for rank in range(n):
            total += 1.0 / float(rank + 1) ** s
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def sample(self, rng: random.Random) -> int:
        """Draw one rank in ``[0, n)`` using ``rng``'s stream."""
        return bisect_left(self._cumulative, rng.random() * self._total)

    def weight(self, rank: int) -> float:
        """The normalized probability of ``rank`` (for tests/analysis)."""
        previous = self._cumulative[rank - 1] if rank > 0 else 0.0
        return (self._cumulative[rank] - previous) / self._total
