"""Periodic timers on top of the event kernel.

The DGC broadcast loop ("every TTB on every active object", paper Alg. 2)
is a periodic timer.  The timer supports an optional start jitter so that
activities created at the same instant do not broadcast in lock-step, which
is how the paper's implementation behaves (each activity starts its own
beat when created).

Since the beat-wheel refactor, :class:`PeriodicTimer` is a thin adapter
over a beat bucket (:mod:`repro.sim.beats`): the start jitter maps to the
bucket phase, and timers sharing a period and phase share one kernel
event per tick.  The pre-wheel behaviour — one cancellable kernel event
per timer per tick — is kept as the explicit ``per_event=True`` mode; it
is the baseline the Fig. 10 perf benchmark measures the wheel against,
and the fallback for kernels without a ``schedule_periodic`` facade.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim.kernel import Event, SimKernel


class PeriodicTimer:
    """Fires ``callback()`` every ``period`` simulated seconds until stopped."""

    def __init__(
        self,
        kernel: SimKernel,
        period: float,
        callback: Callable[[], None],
        *,
        initial_delay: Optional[float] = None,
        label: str = "periodic",
        per_event: bool = False,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"timer period must be positive, got {period}")
        self._kernel = kernel
        self._callback = callback
        self._label = label
        self._handle = None
        self._event: Optional[Event] = None
        self._period = period
        self._stopped = False
        self._ticks = 0
        if not per_event and hasattr(kernel, "schedule_periodic"):
            self._handle = kernel.schedule_periodic(
                period, callback, first_delay=initial_delay, label=label
            )
            return
        first = period if initial_delay is None else initial_delay
        self._event = kernel.schedule(first, self._fire, label=label)

    @property
    def ticks(self) -> int:
        """Number of times the timer has fired."""
        if self._handle is not None:
            return self._handle.ticks
        return self._ticks

    @property
    def stopped(self) -> bool:
        if self._handle is not None:
            return self._handle.stopped
        return self._stopped

    @property
    def period(self) -> float:
        if self._handle is not None:
            return self._handle.period
        return self._period

    @property
    def next_fire_time(self) -> Optional[float]:
        """When the timer next fires (``None`` once stopped)."""
        if self._handle is not None:
            return self._handle.next_fire_time
        return self._event.time if self._event is not None else None

    def stop(self) -> None:
        """Cancel the timer; the callback will never fire again."""
        if self._handle is not None:
            self._handle.stop()
            return
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def set_period(self, period: float) -> None:
        """Change the period; takes effect from the *next* re-arm.

        Used by the dynamic-TTB extension (paper Sec. 7.1): collectors
        speed their beat up when garbage is suspected and relax it when
        the system is loaded.  On the wheel this re-buckets the member
        at its next fire.
        """
        if self._handle is not None:
            self._handle.set_period(period)
            return
        if period <= 0:
            raise SimulationError(f"timer period must be positive, got {period}")
        self._period = period

    def _fire(self) -> None:
        if self._stopped:
            return
        self._ticks += 1
        # Re-arm before the callback so a callback that stops the timer
        # cancels the already-scheduled next tick.  ``schedule_at`` is
        # called directly: the period is validated positive, so the
        # wrapper's negative-delay check per tick is redundant.
        self._event = self._kernel.schedule_at(
            self._kernel.now + self._period, self._fire, label=self._label
        )
        self._callback()
