"""Periodic timers on top of the event kernel.

The DGC broadcast loop ("every TTB on every active object", paper Alg. 2)
is a periodic timer.  The timer supports an optional start jitter so that
activities created at the same instant do not broadcast in lock-step, which
is how the paper's implementation behaves (each activity starts its own
beat when created).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim.kernel import Event, SimKernel


class PeriodicTimer:
    """Fires ``callback()`` every ``period`` simulated seconds until stopped."""

    def __init__(
        self,
        kernel: SimKernel,
        period: float,
        callback: Callable[[], None],
        *,
        initial_delay: Optional[float] = None,
        label: str = "periodic",
    ) -> None:
        if period <= 0:
            raise SimulationError(f"timer period must be positive, got {period}")
        self._kernel = kernel
        self._period = period
        self._callback = callback
        self._label = label
        self._event: Optional[Event] = None
        self._stopped = False
        self._ticks = 0
        first = period if initial_delay is None else initial_delay
        self._event = kernel.schedule(first, self._fire, label=label)

    @property
    def ticks(self) -> int:
        """Number of times the timer has fired."""
        return self._ticks

    @property
    def stopped(self) -> bool:
        return self._stopped

    @property
    def period(self) -> float:
        return self._period

    def stop(self) -> None:
        """Cancel the timer; the callback will never fire again."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def set_period(self, period: float) -> None:
        """Change the period; takes effect from the *next* re-arm.

        Used by the dynamic-TTB extension (paper Sec. 7.1): collectors
        speed their beat up when garbage is suspected and relax it when
        the system is loaded.
        """
        if period <= 0:
            raise SimulationError(f"timer period must be positive, got {period}")
        self._period = period

    def _fire(self) -> None:
        if self._stopped:
            return
        self._ticks += 1
        # Re-arm before the callback so a callback that stops the timer
        # cancels the already-scheduled next tick.  ``schedule_at`` is
        # called directly: the period is validated positive, so the
        # wrapper's negative-delay check per tick is redundant.
        self._event = self._kernel.schedule_at(
            self._kernel.now + self._period, self._fire, label=self._label
        )
        self._callback()
