"""Structured event traces.

The harness reconstructs the paper's figures (e.g. Fig. 10's idle/collected
time series) from traces rather than from ad-hoc counters, so the same run
can regenerate several artifacts.  A trace is a flat, append-only list of
:class:`TraceEvent` records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped record.

    ``kind`` is a stable string key (e.g. ``"activity.idle"``,
    ``"dgc.collected"``); ``subject`` identifies the entity;
    ``details`` carries kind-specific payload.
    """

    time: float
    kind: str
    subject: str
    details: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Append-only trace sink with cheap filtering helpers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[TraceEvent] = []
        self._listeners: List[Callable[[TraceEvent], None]] = []

    def record(
        self,
        time: float,
        kind: str,
        subject: str,
        **details: Any,
    ) -> None:
        """Append a record (no-op when the tracer is disabled)."""
        if not self.enabled:
            return
        event = TraceEvent(time, kind, subject, details)
        self._events.append(event)
        for listener in self._listeners:
            listener(event)

    def subscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        """Invoke ``listener`` for every subsequent record."""
        self._listeners.append(listener)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(
        self,
        kind: Optional[str] = None,
        subject: Optional[str] = None,
    ) -> List[TraceEvent]:
        """Return records matching the given kind and/or subject."""
        # Always hand out a fresh list: callers must never be able to
        # mutate the tracer's internal event log through the return value.
        if kind is None and subject is None:
            return list(self._events)
        result = self._events
        if kind is not None:
            result = [event for event in result if event.kind == kind]
        if subject is not None:
            result = [event for event in result if event.subject == subject]
        return result

    def first(self, kind: str) -> Optional[TraceEvent]:
        """Earliest record of ``kind``, or None."""
        for event in self._events:
            if event.kind == kind:
                return event
        return None

    def last(self, kind: str) -> Optional[TraceEvent]:
        """Latest record of ``kind``, or None."""
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        return None

    def count(self, kind: str) -> int:
        """Number of records of ``kind``."""
        return sum(1 for event in self._events if event.kind == kind)
