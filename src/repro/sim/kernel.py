"""Discrete-event simulation kernel.

The kernel is a classic heap-ordered event queue with a simulated clock
measured in seconds (floats).  Everything in the reproduction — network
latency, request service times, the TTB heartbeat, TTA expiry — is driven
by this single clock, which makes every run fully deterministic for a given
seed and schedule.

Determinism matters here because the DGC algorithm is specified in terms of
physical-time bounds (``TTA > 2*TTB + MaxComm``); a deterministic clock lets
the test-suite probe exactly the boundary cases the paper reasons about.
"""
# repro: hot-path — every class slotted, no closure allocation in loops (HOT rules)

from __future__ import annotations

import itertools
# Bound as module globals: ``heapq.heappush`` resolves an attribute per
# call, and the schedule/step paths run once per staged delivery — at
# pulse-fabric scale (millions of events) the attribute walk is real.
from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SchedulingInPastError, SimulationError


class Event:
    """A scheduled callback; returned by :meth:`SimKernel.schedule`.

    Events are cancellable: :meth:`cancel` marks the event dead and the
    kernel skips it when popped.  This avoids an O(n) heap removal.

    ``owner`` is the kernel that keeps a maintained pending-event count;
    cancellation notifies it so :attr:`SimKernel.pending_count` stays
    exact without scanning the heap.  Both kernels maintain the counter
    (the live kernel mirrors it for stats parity); detached events leave
    it ``None``.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "label", "owner")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        label: str,
        owner: Optional["SimKernel"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.label = label
        self.owner = owner

    def cancel(self) -> None:
        """Mark the event so the kernel never fires it."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner._on_event_cancelled()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.3f}, label={self.label!r}, {state})"


class SimKernel:
    """Heap-based discrete-event scheduler with a simulated clock.

    Ties are broken by scheduling order (FIFO among same-time events), which
    is essential for the per-connection FIFO guarantee the DGC relies on.

    The heap holds ``(time, seq, event, callback, args)`` tuples rather
    than bare events: tuple comparison runs in C, whereas ``Event.__lt__``
    was the single hottest function on large runs (one Python call per
    heap sift step).  ``event`` is ``None`` for the fire-and-forget fast
    path (:meth:`schedule_fire_at`), which skips the :class:`Event`
    allocation entirely for callbacks that are never cancelled — message
    deliveries, the bulk of all events on big runs.
    """

    __slots__ = (
        "_now", "_heap", "_seq", "_fired", "_scheduled", "_pending",
        "_peak_pending", "_running", "_stop_requested", "_beat_wheel",
    )

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, Optional[Event], Callable[..., None], Tuple[Any, ...]]] = []
        self._seq = itertools.count()
        self._fired = 0
        self._scheduled = 0
        self._pending = 0
        self._peak_pending = 0
        self._running = False
        self._stop_requested = False
        self._beat_wheel = None

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def pending_count(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events.

        Maintained incrementally (O(1)): incremented on schedule,
        decremented on fire and on :meth:`Event.cancel`.
        """
        return self._pending

    @property
    def peak_pending_count(self) -> int:
        """High-water mark of the pending-event queue depth."""
        return self._peak_pending

    @property
    def fired_count(self) -> int:
        """Total number of events that have executed."""
        return self._fired

    @property
    def scheduled_count(self) -> int:
        """Total number of events ever scheduled."""
        return self._scheduled

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingInPastError(
                f"cannot schedule {label or callback!r} with negative delay {delay}"
            )
        return self.schedule_at(self._now + delay, callback, *args, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SchedulingInPastError(
                f"cannot schedule {label or callback!r} at {time} < now {self._now}"
            )
        seq = next(self._seq)
        event = Event(time, seq, callback, args, label, owner=self)
        heappush(self._heap, (time, seq, event, callback, args))
        self._scheduled += 1
        self._pending += 1
        if self._pending > self._peak_pending:
            self._peak_pending = self._pending
        return event

    def schedule_fire_at(
        self,
        time: float,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
    ) -> None:
        """Fire-and-forget fast path: schedule a callback that will never
        be cancelled, without allocating an :class:`Event`.

        Used by the network fabric for message deliveries; the past-time
        check still applies, but no handle is returned.
        """
        if time < self._now:
            raise SchedulingInPastError(
                f"cannot schedule {callback!r} at {time} < now {self._now}"
            )
        heappush(self._heap, (time, next(self._seq), None, callback, args))
        self._scheduled += 1
        self._pending += 1
        if self._pending > self._peak_pending:
            self._peak_pending = self._pending

    def _on_event_cancelled(self) -> None:
        self._pending -= 1

    def schedule_periodic(
        self,
        period: float,
        callback: Callable[[], None],
        *,
        first_delay: Optional[float] = None,
        label: str = "beat",
    ):
        """Register a periodic callback on the kernel's beat wheel.

        Callbacks sharing a ``(period, phase)`` bucket ride one heap
        event per tick (see :mod:`repro.sim.beats`), so N aligned
        heartbeats cost O(buckets) heap traffic instead of O(N).  The
        returned :class:`repro.sim.beats.BeatHandle` supports O(1)
        ``stop()`` (bucket-aware cancel: no dead event is left in the
        heap) and ``set_period()`` (re-buckets at the next fire).
        """
        return self.beat_wheel.register(
            period, callback, first_delay=first_delay, label=label
        )

    @property
    def beat_wheel(self):
        """The kernel's (lazily created) beat-bucket scheduler."""
        wheel = self._beat_wheel
        if wheel is None:
            from repro.sim.beats import BeatWheel

            wheel = self._beat_wheel = BeatWheel(self)
        return wheel

    def request_stop(self) -> None:
        """Ask a :meth:`run` in progress to return after the current event.

        The event-driven quiescence path: a callback that detects the
        condition it was waiting for (e.g. the world's live non-root
        counter hitting zero) stops the kernel immediately instead of the
        caller polling a predicate at a fixed interval.
        """
        self._stop_requested = True

    def step(self) -> bool:
        """Fire the single next pending event.

        Returns ``False`` when the queue is exhausted.
        """
        while self._heap:
            entry = heappop(self._heap)
            event = entry[2]
            if event is not None:
                if event.cancelled:
                    continue
                # Detach so a cancel() after firing is a no-op instead of
                # double-decrementing the pending counter.
                event.owner = None
            self._now = entry[0]
            self._fired += 1
            self._pending -= 1
            entry[3](*entry[4])
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events fired.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fired earlier, mirroring "run for N seconds".
        """
        if self._running:
            raise SimulationError("kernel.run() is not reentrant")
        self._running = True
        self._stop_requested = False
        fired = 0
        heap = self._heap
        try:
            while heap:
                if self._stop_requested:
                    break
                if max_events is not None and fired >= max_events:
                    break
                head = heap[0]
                event = head[2]
                if event is not None and event.cancelled:
                    heappop(heap)
                    continue
                if until is not None and head[0] > until:
                    break
                heappop(heap)
                if event is not None:
                    # Detach so a cancel() after firing is a no-op instead
                    # of double-decrementing the pending counter.
                    event.owner = None
                self._now = head[0]
                self._fired += 1
                self._pending -= 1
                head[3](*head[4])
                fired += 1
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stop_requested:
            # A stop request leaves the clock at the stopping event so the
            # caller can observe exactly when the condition was met.
            self._now = until
        return fired

    def run_until_quiescent(
        self,
        predicate: Callable[[], bool],
        check_interval: float,
        timeout: float,
    ) -> bool:
        """Run, polling ``predicate`` every ``check_interval`` simulated
        seconds; return ``True`` as soon as it holds, ``False`` at timeout.
        """
        deadline = self._now + timeout
        while self._now < deadline:
            if predicate():
                return True
            self.run(until=min(self._now + check_interval, deadline))
            if not self._heap and predicate():
                return True
            if not self._heap:
                return predicate()
        return predicate()
