"""Discrete-event simulation kernel.

The kernel is a classic heap-ordered event queue with a simulated clock
measured in seconds (floats).  Everything in the reproduction — network
latency, request service times, the TTB heartbeat, TTA expiry — is driven
by this single clock, which makes every run fully deterministic for a given
seed and schedule.

Determinism matters here because the DGC algorithm is specified in terms of
physical-time bounds (``TTA > 2*TTB + MaxComm``); a deterministic clock lets
the test-suite probe exactly the boundary cases the paper reasons about.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SchedulingInPastError, SimulationError


class Event:
    """A scheduled callback; returned by :meth:`SimKernel.schedule`.

    Events are cancellable: :meth:`cancel` marks the event dead and the
    kernel skips it when popped.  This avoids an O(n) heap removal.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "label")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        label: str,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Mark the event so the kernel never fires it."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.3f}, label={self.label!r}, {state})"


class SimKernel:
    """Heap-based discrete-event scheduler with a simulated clock.

    Ties are broken by scheduling order (FIFO among same-time events), which
    is essential for the per-connection FIFO guarantee the DGC relies on.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._fired = 0
        self._scheduled = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def pending_count(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events."""
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def fired_count(self) -> int:
        """Total number of events that have executed."""
        return self._fired

    @property
    def scheduled_count(self) -> int:
        """Total number of events ever scheduled."""
        return self._scheduled

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingInPastError(
                f"cannot schedule {label or callback!r} with negative delay {delay}"
            )
        return self.schedule_at(self._now + delay, callback, *args, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SchedulingInPastError(
                f"cannot schedule {label or callback!r} at {time} < now {self._now}"
            )
        event = Event(time, next(self._seq), callback, args, label)
        heapq.heappush(self._heap, event)
        self._scheduled += 1
        return event

    def step(self) -> bool:
        """Fire the single next pending event.

        Returns ``False`` when the queue is exhausted.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._fired += 1
            event.callback(*event.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events fired.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fired earlier, mirroring "run for N seconds".
        """
        if self._running:
            raise SimulationError("kernel.run() is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                if max_events is not None and fired >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                self._fired += 1
                event.callback(*event.args)
                fired += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return fired

    def run_until_quiescent(
        self,
        predicate: Callable[[], bool],
        check_interval: float,
        timeout: float,
    ) -> bool:
        """Run, polling ``predicate`` every ``check_interval`` simulated
        seconds; return ``True`` as soon as it holds, ``False`` at timeout.
        """
        deadline = self._now + timeout
        while self._now < deadline:
            if predicate():
                return True
            self.run(until=min(self._now + check_interval, deadline))
            if not self._heap and predicate():
                return True
            if not self._heap:
                return predicate()
        return predicate()
