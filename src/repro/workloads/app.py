"""Reusable application behaviors and graph-building helpers.

The central piece is :class:`Peer`, an activity behavior that keeps
references under string keys (the simulated equivalent of object fields
holding stubs), can do timed work, and can forward references — enough to
express every synthetic topology and both paper workloads.

Helpers like :func:`link` and :func:`release_all` drive a world from a
*driver* (a dummy root activity standing in for ``main()``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.runtime.activeobject import Activity
from repro.runtime.behaviors import Behavior
from repro.runtime.proxy import Proxy
from repro.runtime.request import Request


class Peer(Behavior):
    """An activity that holds references under keys.

    Methods served:

    * ``hold`` — keep the attached references under ``request.data`` keys
      (a list aligned with the attached proxies); a re-used key drops the
      previously held reference first,
    * ``drop`` — drop the references held under ``request.data`` keys,
    * ``drop_all`` — drop every held reference,
    * ``work`` — sleep ``request.data`` seconds of simulated compute,
    * ``forward`` — send one held reference to another held peer:
      ``request.data = (target_key, ref_key, store_key)``,
    * ``ping`` — no-op (payload-only traffic).
    """

    def __init__(self) -> None:
        self.held: Dict[str, Proxy] = {}

    # -- reference management -------------------------------------------

    def do_hold(self, ctx, request: Request, proxies: List[Proxy]):
        keys = request.data
        if keys is None:
            keys = [proxy.activity_id for proxy in proxies]
        for key, proxy in zip(keys, proxies):
            self._store(ctx, key, proxy)
        return None

    def do_drop(self, ctx, request: Request, proxies: List[Proxy]):
        for key in request.data:
            self._discard(ctx, key)
        return None

    def do_drop_all(self, ctx, request: Request, proxies: List[Proxy]):
        for key in list(self.held):
            self._discard(ctx, key)
        return None

    # -- compute and traffic ---------------------------------------------

    def do_work(self, ctx, request: Request, proxies: List[Proxy]):
        yield ctx.sleep(float(request.data))
        return None

    def do_ping(self, ctx, request: Request, proxies: List[Proxy]):
        return None

    def do_forward(self, ctx, request: Request, proxies: List[Proxy]):
        target_key, ref_key, store_key = request.data
        target = self.held.get(target_key)
        ref = self.held.get(ref_key)
        if target is None or ref is None:
            return None
        ctx.call(target, "hold", refs=[ref], data=[store_key])
        return None

    # -- internals --------------------------------------------------------

    def _store(self, ctx, key: str, proxy: Proxy) -> None:
        old = self.held.pop(key, None)
        if old is not None and not old.released:
            ctx.drop(old)
        self.held[key] = ctx.keep(proxy)

    def _discard(self, ctx, key: str) -> None:
        proxy = self.held.pop(key, None)
        if proxy is not None and not proxy.released:
            ctx.drop(proxy)


def link(
    driver: Activity,
    source: Proxy,
    target: Proxy,
    *,
    key: Optional[str] = None,
    payload_bytes: int = 0,
) -> None:
    """Make ``source`` hold a reference to ``target`` (edge source->target).

    Implemented as an application request from the driver carrying the
    target reference, exactly how edges appear in a real deployment.
    """
    driver.context.call(
        source,
        "hold",
        refs=[target],
        data=[key if key is not None else target.activity_id],
        payload_bytes=payload_bytes,
    )


def unlink(
    driver: Activity,
    source: Proxy,
    *,
    key: str,
) -> None:
    """Make ``source`` drop the reference held under ``key``."""
    driver.context.call(source, "drop", data=[key])


def release_all(driver: Activity, proxies: Iterable[Proxy]) -> None:
    """The driver drops its stubs (the simulated ``main()`` returning)."""
    for proxy in proxies:
        if not proxy.released:
            driver.context.drop(proxy)


def links_settled(world) -> bool:
    """True when no application traffic is in flight and everyone who will
    become idle is idle (useful before dropping driver references)."""
    if world.inflight_pinned():
        return False
    return all(
        activity.is_idle() or activity.is_root
        for activity in world.live_activities()
    )
