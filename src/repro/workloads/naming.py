"""The naming workload: bind/resolve/unbind churn across sites.

Paper Sec. 4.1 makes registered active objects DGC roots because "anyone
can look them up at any time".  This workload exercises exactly that
traffic shape — the one the naming service's placement and lease knobs
exist for:

* a **binder** (a root activity with a collector — active code) creates
  ``service_count`` services spread across the grid, binds each under a
  well-known name over the fabric (``ctx.bind``), churns a random name
  every ``churn_period`` (unbind + rebind, driving explicit
  invalidations through the lease book / replica set), and finally
  unbinds everything and drops its stubs so the DGC collapses the
  services;
* ``client_count`` **clients** — root activities *without* collectors,
  modelling external lookers that rely on the registry's root pin rather
  than DGC edges — wake on deterministic sleeps and issue bursts of
  fire-and-forget ``ctx.lookup`` calls, consuming each resolution in its
  ``on_resolve`` callback: count hit/miss, record resolve latency, drop
  the acquired stub.

Because the clients' busy/idle timeline is sleep-driven (they never
yield a lookup future) and every acquired stub is dropped inside the
resolving kernel event, the lookup path is *invisible* to the DGC
timeline: reference graphs at every heartbeat instant, collection
instants and tracer streams are identical whether a resolve was served
by a round trip, a replica or a leased cache entry.  That is what makes
the cached-vs-uncached bit-identical equivalence suite possible — and it
mirrors how a real RMIRegistry/JNDI client interacts with a leased
naming service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.core.config import DgcConfig, RegistryConfig
from repro.net.topology import Topology, uniform_topology
from repro.runtime.behaviors import Behavior, SinkBehavior
from repro.sim.rng import ZipfSampler
from repro.world import World


class NamingBinder(Behavior):
    """Active code owning the services: creates, binds, churns, tears
    down.  All registry operations ride the fabric through the context
    API and are awaited (the binder yields each ack future).

    ``name_count`` (default: one name per service) scales the *name
    space* past the service population: names alias round-robin onto
    the services, exercising the registry's world-level root-pin
    refcounts at bind-heavy scale without minting one activity per
    name.  ``churn_burst`` unbind+rebinds that many names per churn
    wake, and ``sampler`` (a :class:`~repro.sim.rng.ZipfSampler`) skews
    which names churn — hot names collect the most lease holders, so
    skewed churn maximizes the coherence fan-out the beat channel
    batches.  The defaults reproduce the original draw sequence
    bit-for-bit.
    """

    def __init__(
        self,
        service_count: int,
        churn_deadline: float,
        churn_period: float,
        teardown_at: float,
        name_count: Optional[int] = None,
        churn_burst: int = 1,
        sampler: Optional[ZipfSampler] = None,
    ) -> None:
        self.service_count = service_count
        self.churn_deadline = churn_deadline
        self.churn_period = churn_period
        self.teardown_at = teardown_at
        self.name_count = (
            name_count if name_count is not None else service_count
        )
        if self.name_count < service_count:
            raise ValueError(
                f"name_count ({self.name_count}) must be >= service_count "
                f"({service_count}): every service needs a first name"
            )
        if churn_burst < 1:
            raise ValueError(f"churn_burst must be >= 1, got {churn_burst}")
        self.churn_burst = churn_burst
        self.sampler = sampler
        self.services: dict = {}
        self.proxies: list = []
        self.binds_acked = 0
        self.unbinds_acked = 0
        self.rebinds = 0

    @staticmethod
    def service_name(index: int) -> str:
        return f"svc-{index}"

    def on_start(self, ctx):
        for index in range(self.name_count):
            name = self.service_name(index)
            if index < self.service_count:
                proxy = ctx.create(SinkBehavior(), name=f"named{index}")
                self.proxies.append(proxy)
            else:
                proxy = self.proxies[index % self.service_count]
            self.services[name] = proxy
            future = ctx.bind(name, proxy)
            yield future
            if future.value:
                self.binds_acked += 1
        rng = ctx.rng
        sampler = self.sampler
        while ctx.now < self.churn_deadline:
            yield ctx.sleep(self.churn_period * (0.5 + rng.random()))
            for _ in range(self.churn_burst):
                if sampler is not None:
                    index = sampler.sample(rng)
                else:
                    index = rng.randrange(self.name_count)
                name = self.service_name(index)
                future = ctx.unbind(name)
                yield future
                if not future.value:
                    continue
                self.unbinds_acked += 1
                future = ctx.bind(name, self.services[name])
                yield future
                if future.value:
                    self.rebinds += 1
        if ctx.now < self.teardown_at:
            yield ctx.sleep(self.teardown_at - ctx.now)
        dropped = set()
        for name, proxy in self.services.items():
            future = ctx.unbind(name)
            yield future
            if future.value:
                self.unbinds_acked += 1
            if id(proxy) not in dropped:
                dropped.add(id(proxy))
                ctx.drop(proxy)
        self.services = {}
        self.proxies = []
        return None


class NamingClient(Behavior):
    """An external looker: bursts of fire-and-forget resolves on a
    deterministic sleep schedule; each resolution is consumed (and its
    stub dropped) inside the resolving kernel event.

    A ``sampler`` skews which names get looked up (rank 0 = hottest);
    without one the draw is uniform via ``rng.randrange``, preserving
    the original sequence bit-for-bit."""

    def __init__(
        self,
        names: List[str],
        deadline: float,
        period: float,
        burst: int,
        sampler: Optional[ZipfSampler] = None,
    ) -> None:
        self.names = names
        self.deadline = deadline
        self.period = period
        self.burst = burst
        self.sampler = sampler
        self.issued = 0
        self.completed = 0
        self.hits = 0
        self.misses = 0
        self.latency_sum = 0.0

    def on_start(self, ctx):
        rng = ctx.rng
        names = self.names
        count = len(names)
        sampler = self.sampler
        while ctx.now < self.deadline:
            yield ctx.sleep(self.period * (0.5 + rng.random()))
            for _ in range(self.burst):
                if sampler is not None:
                    name = names[sampler.sample(rng)]
                else:
                    name = names[rng.randrange(count)]
                issued_at = ctx.now
                future = ctx.lookup(name)
                self.issued += 1
                future.on_resolve(
                    lambda f, t=issued_at: self._consume(ctx, f, t)
                )
        return None

    def _consume(self, ctx, future, issued_at: float) -> None:
        self.completed += 1
        self.latency_sum += ctx.now - issued_at
        proxy = future.value
        if proxy is None:
            self.misses += 1
        else:
            self.hits += 1
            ctx.drop(proxy)


@dataclass
class NamingResult:
    """One naming run's quantities (resolution + coherence traffic)."""

    service_count: int
    client_count: int
    resolves_issued: int
    resolves_completed: int
    hits: int
    misses: int
    #: Mean simulated seconds from ``ctx.lookup`` to resolution.
    mean_resolve_latency_s: float
    #: Naming-service internals (where resolves were served; the hit
    #: counters exclude locally-served negatives).
    authority_hits: int
    replica_hits: int
    cache_hits: int
    local_misses: int
    remote_lookups: int
    invalidations_sent: int
    renew_messages_sent: int
    binds_applied: int
    unbinds_applied: int
    #: Bandwidth split (MB, decimal as in the paper).
    registry_bandwidth_mb: float
    total_bandwidth_mb: float
    dgc_bandwidth_mb: float
    collected_acyclic: int
    collected_cyclic: int
    dead_letters: int
    all_collected: bool
    #: Beat-coherence channel internals (zero under eager coherence).
    coherence_staged: int = 0
    coherence_coalesced: int = 0
    coherence_messages_sent: int = 0
    pushes_sent: int = 0
    #: Names bound (aliases over the services; defaults to services).
    name_count: int = 0
    events_fired: int = 0
    peak_pending_events: int = 0
    sim_time_s: float = 0.0
    world: Optional[object] = None
    #: The client behaviors, kept for fine-grained assertions.
    clients: List[NamingClient] = field(default_factory=list)


def run_naming(
    *,
    dgc: Optional[DgcConfig],
    registry: Optional[RegistryConfig] = None,
    client_count: int = 32,
    service_count: int = 16,
    name_count: Optional[int] = None,
    zipf_s: float = 0.0,
    churn_burst: int = 1,
    duration: float = 300.0,
    lookup_period: float = 5.0,
    lookup_burst: int = 4,
    churn_period: Optional[float] = None,
    teardown_lag: float = 10.0,
    topology: Optional[Topology] = None,
    seed: int = 0,
    collect_timeout: float = 36_000.0,
    beat_slots: Optional[Union[int, str]] = None,
    batched_beats: Optional[bool] = None,
    aggregate_site_pairs: Optional[bool] = None,
    aggregation: Optional[str] = None,
    trace: bool = False,
    keep_world: bool = False,
    safety_checks: bool = False,
) -> NamingResult:
    """Run the naming churn and report resolution + coherence numbers.

    ``registry`` picks placement and lease policy (default: the uncached
    static-home baseline); the delivery-core knobs (``aggregation``,
    ``batched_beats``, ``aggregate_site_pairs``, ``beat_slots``)
    override the DGC config exactly as in
    :func:`repro.workloads.torture.run_torture`.

    The bind-heavy knobs — ``name_count`` (names aliasing round-robin
    over the services, default one per service), ``zipf_s`` (Zipf skew
    for lookup *and* churn name draws; 0 = uniform via the original
    ``randrange`` path) and ``churn_burst`` (names churned per binder
    wake) — default to the original behavior bit-for-bit.
    """
    if dgc is not None:
        overrides = {}
        if beat_slots is not None:
            overrides["beat_slots"] = beat_slots
        if batched_beats is not None:
            overrides["batched_beats"] = batched_beats
        if aggregate_site_pairs is not None:
            overrides["aggregate_site_pairs"] = aggregate_site_pairs
        if aggregation is not None:
            overrides["aggregation"] = aggregation
        elif (
            ("batched_beats" in overrides or "aggregate_site_pairs" in overrides)
            and dgc.aggregation is not None
        ):
            # Boolean overrides must win over a base config's named
            # mode, or normalization would resurrect it.
            overrides["aggregation"] = None
        if overrides:
            dgc = dgc.with_overrides(**overrides)
    world = World(
        topology if topology is not None else uniform_topology(32),
        dgc=dgc,
        registry=registry,
        seed=seed,
        trace=trace,
        safety_checks=safety_checks,
    )
    nodes = world.topology.nodes
    if churn_period is None:
        churn_period = max(duration / 12.0, 1.0)
    if name_count is None:
        name_count = service_count
    sampler = ZipfSampler(name_count, zipf_s) if zipf_s > 0.0 else None
    binder = NamingBinder(
        service_count,
        churn_deadline=duration,
        churn_period=churn_period,
        teardown_at=duration + teardown_lag,
        name_count=name_count,
        churn_burst=churn_burst,
        sampler=sampler,
    )
    world.create_activity(binder, node=nodes[0], name="binder", root=True)
    names = [NamingBinder.service_name(i) for i in range(name_count)]
    clients: List[NamingClient] = []
    for index in range(client_count):
        client = NamingClient(
            names, deadline=duration, period=lookup_period,
            burst=lookup_burst, sampler=sampler,
        )
        clients.append(client)
        world.create_activity(
            client,
            node=nodes[index % len(nodes)],
            name=f"client{index}",
            root=True,
            dgc_enabled=False,
        )

    if dgc is None:
        world.run_for(duration + teardown_lag + 60.0)
        all_collected = world.all_collected()
    else:
        all_collected = world.run_until_collected(collect_timeout)

    naming = world.registry
    issued = sum(c.issued for c in clients)
    completed = sum(c.completed for c in clients)
    latency_sum = sum(c.latency_sum for c in clients)
    accountant = world.accountant
    return NamingResult(
        service_count=service_count,
        client_count=client_count,
        resolves_issued=issued,
        resolves_completed=completed,
        hits=sum(c.hits for c in clients),
        misses=sum(c.misses for c in clients),
        mean_resolve_latency_s=(latency_sum / completed) if completed else 0.0,
        authority_hits=naming.authority_hits,
        replica_hits=naming.replica_hits,
        cache_hits=naming.cache_hits,
        local_misses=naming.local_misses,
        remote_lookups=naming.remote_lookups,
        invalidations_sent=naming.invalidations_sent,
        renew_messages_sent=naming.renew_messages_sent,
        binds_applied=naming.binds_applied,
        unbinds_applied=naming.unbinds_applied,
        coherence_staged=naming.coherence_staged,
        coherence_coalesced=naming.coherence_coalesced,
        coherence_messages_sent=naming.coherence_messages_sent,
        pushes_sent=naming.pushes_sent,
        name_count=name_count,
        registry_bandwidth_mb=accountant.registry_bytes / 1e6,
        total_bandwidth_mb=accountant.megabytes(),
        dgc_bandwidth_mb=accountant.dgc_bytes / 1e6,
        collected_acyclic=world.stats.collected_acyclic,
        collected_cyclic=world.stats.collected_cyclic,
        dead_letters=world.stats.dead_letters,
        all_collected=all_collected,
        events_fired=world.kernel.fired_count,
        peak_pending_events=getattr(world.kernel, "peak_pending_count", 0),
        sim_time_s=world.kernel.now,
        world=world if keep_world else None,
        clients=clients,
    )
