"""Workloads driving the DGC experiments.

* :mod:`repro.workloads.app` — reusable behaviors (reference-keeping
  peers) and graph-building helpers,
* :mod:`repro.workloads.synthetic` — rings, chains, compound cycles and
  the paper's Figs. 4-7 scenarios,
* :mod:`repro.workloads.nas` — communication skeletons of the NAS CG/EP/FT
  kernels (paper Sec. 5.2),
* :mod:`repro.workloads.torture` — the DGC torture test (paper Sec. 5.3),
* :mod:`repro.workloads.naming` — bind/resolve/unbind churn across sites
  (the naming service's lookup-heavy traffic shape, paper Sec. 4.1).
"""

from repro.workloads.app import Peer, link, links_settled, release_all
from repro.workloads.synthetic import (
    build_chain,
    build_complete_graph,
    build_compound_cycles,
    build_random_graph,
    build_ring,
    create_peers,
)

__all__ = [
    "Peer",
    "link",
    "links_settled",
    "release_all",
    "build_chain",
    "build_complete_graph",
    "build_compound_cycles",
    "build_random_graph",
    "build_ring",
    "create_peers",
]
