"""Synthetic reference-graph builders.

These construct the shapes the paper reasons about:

* rings (pure cycles) and chains (pure acyclic garbage),
* the Fig. 7 *compound cycle* (two cycles sharing a junction, optionally
  kept alive by one live object),
* complete graphs (the NAS barrier shape),
* random graphs for property-based testing.

All builders send real application messages from a driver; callers must
run the world briefly (e.g. ``world.run_for(settle)``) for the edges to
materialise before relying on them.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from repro.runtime.activeobject import Activity
from repro.runtime.proxy import Proxy
from repro.workloads.app import Peer, link


def create_peers(
    world,
    driver: Activity,
    count: int,
    *,
    name_prefix: str = "peer",
    behavior_factory: Callable[[], Peer] = Peer,
    node: Optional[str] = None,
) -> List[Proxy]:
    """Create ``count`` Peer activities; the driver holds one stub each."""
    return [
        driver.context.create(
            behavior_factory(), name=f"{name_prefix}{index}", node=node
        )
        for index in range(count)
    ]


def build_ring(
    world,
    driver: Activity,
    count: int,
    *,
    name_prefix: str = "ring",
) -> List[Proxy]:
    """A cycle ``p0 -> p1 -> ... -> p(count-1) -> p0``."""
    peers = create_peers(world, driver, count, name_prefix=name_prefix)
    for index, source in enumerate(peers):
        target = peers[(index + 1) % count]
        link(driver, source, target, key="next")
    return peers


def build_chain(
    world,
    driver: Activity,
    count: int,
    *,
    name_prefix: str = "chain",
) -> List[Proxy]:
    """An acyclic chain ``p0 -> p1 -> ... -> p(count-1)``."""
    peers = create_peers(world, driver, count, name_prefix=name_prefix)
    for source, target in zip(peers, peers[1:]):
        link(driver, source, target, key="next")
    return peers


def build_complete_graph(
    world,
    driver: Activity,
    count: int,
    *,
    name_prefix: str = "node",
) -> List[Proxy]:
    """Every peer references every other peer (the NAS barrier shape)."""
    peers = create_peers(world, driver, count, name_prefix=name_prefix)
    for index, source in enumerate(peers):
        targets = [peer for j, peer in enumerate(peers) if j != index]
        keys = [f"peer{j}" for j in range(count) if j != index]
        driver.context.call(source, "hold", refs=targets, data=keys)
    return peers


def build_compound_cycles(
    world,
    driver: Activity,
    cycle_a: int,
    cycle_b: int,
    *,
    name_prefix: str = "compound",
) -> Tuple[List[Proxy], List[Proxy]]:
    """Fig. 7's compound structure: two cycles joined at a junction.

    Cycle A is ``a0 -> a1 -> ... -> a0``; cycle B is ``b0 -> ... -> b0``;
    additionally ``a0 -> b0`` and ``b0 -> a0``, so the two cycles form one
    strongly connected component with sub-cycles — the case where the
    consensus-propagation optimisation matters (Sec. 4.3).
    """
    ring_a = build_ring(world, driver, cycle_a, name_prefix=f"{name_prefix}A")
    ring_b = build_ring(world, driver, cycle_b, name_prefix=f"{name_prefix}B")
    link(driver, ring_a[0], ring_b[0], key="bridge")
    link(driver, ring_b[0], ring_a[0], key="bridge")
    return ring_a, ring_b


def build_random_graph(
    world,
    driver: Activity,
    count: int,
    edge_probability: float,
    rng: random.Random,
    *,
    name_prefix: str = "rand",
) -> List[Proxy]:
    """A random directed graph over ``count`` peers (G(n, p) on edges)."""
    peers = create_peers(world, driver, count, name_prefix=name_prefix)
    for i, source in enumerate(peers):
        for j, target in enumerate(peers):
            if i != j and rng.random() < edge_probability:
                link(driver, source, target, key=f"edge{j}")
    return peers


def build_two_oriented_cycles(
    world,
    driver: Activity,
    cycle_size: int,
    *,
    name_prefix: str = "oriented",
) -> Tuple[List[Proxy], List[Proxy]]:
    """Fig. 4's shape: cycle C1 whose members also reference cycle C2.

    Edges go C1 -> C2 only, so (references being oriented) C2's state must
    never prevent C1's collection, while C1 keeps C2 alive.
    """
    c1 = build_ring(world, driver, cycle_size, name_prefix=f"{name_prefix}C1")
    c2 = build_ring(world, driver, cycle_size, name_prefix=f"{name_prefix}C2")
    link(driver, c1[0], c2[0], key="down")
    return c1, c2
