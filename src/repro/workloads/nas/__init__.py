"""NAS Parallel Benchmark communication skeletons (paper Sec. 5.2).

The paper runs ProActive implementations of NAS CG, EP and FT (class C,
256 active objects, round-robin on 128 Grid'5000 nodes).  For the DGC the
numerics are irrelevant; what matters is:

* the reference graph — a **complete graph** over the workers, because of
  global barriers ("every active object has a reference to every other
  active object"), static for the whole run;
* the communication *volume* profile — CG and FT communicate heavily,
  EP barely at all, so the relative DGC bandwidth overhead differs by
  orders of magnitude (Fig. 8);
* the run lengths — CG is long, FT medium, EP seconds (Fig. 9).

Each kernel is therefore modelled by an iteration count, a per-iteration
compute time and a partner/payload pattern.
"""

from repro.workloads.nas.common import (
    KERNELS,
    PAPER_AO_COUNT,
    NasKernelSpec,
    NasRunResult,
    NasWorker,
    kernel_spec,
    paper_scale_kernels,
    run_nas_kernel,
)

__all__ = [
    "KERNELS",
    "PAPER_AO_COUNT",
    "NasKernelSpec",
    "NasRunResult",
    "NasWorker",
    "kernel_spec",
    "paper_scale_kernels",
    "run_nas_kernel",
]
