"""NAS kernel skeleton runner.

``run_nas_kernel`` reproduces the paper's measurement protocol
(Sec. 5.2):

1. deploy ``ao_count`` workers round-robin over the topology and build the
   complete reference graph (global barriers),
2. run the kernel; *application time* stops when every worker returned its
   result (all ``run`` futures resolved and traffic drained),
3. with DGC: the driver drops its stubs (``main()`` returns) and the run
   continues until the DGC collects every worker; *DGC time* is the gap
   between the result and the last collection — the paper's "time between
   when the benchmark has its result and when the DGC collects all the
   active objects";
   without DGC: workers are terminated explicitly, as the paper's
   implementation does.

Bandwidth is read from the SOCKS-equivalent accountant at both instants,
giving the Fig. 8 (bandwidth) and Fig. 9 (time) quantities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from repro.core.config import DgcConfig
from repro.errors import SimulationError
from repro.net.topology import Topology, uniform_topology
from repro.runtime.request import Request
from repro.workloads.app import Peer, release_all
from repro.workloads.nas.patterns import (
    Pattern,
    cg_pattern,
    ep_pattern,
    ft_pattern,
)
from repro.world import World


class NasWorker(Peer):
    """One NAS worker: computes per iteration, then messages partners.

    Two driving modes share the same communication pattern:

    * ``run`` — the asynchronous kernel skeleton: one long-lived handler
      loops through every iteration, exchanges one-way pings, and the
      driver's future resolves with the final result;
    * ``step`` — one iteration per request, for the reply-barrier
      variant: the driver calls ``step`` with ``expect_reply=True`` on
      every worker and waits on all of the returned futures before
      launching the next iteration.  Exchanges stay one-way (a worker
      blocked on futures cannot serve its partners' pings — the paper's
      active objects are single-threaded, so peer-to-peer reply waits
      would deadlock the all-to-all patterns); the barrier rides the
      future/reply path between driver and workers instead.
    """

    def __init__(self, index: int, count: int, pattern: Pattern) -> None:
        super().__init__()
        self.index = index
        self.count = count
        self.pattern = pattern
        self.iterations_done = 0

    def _exchange(self, ctx, iteration: int) -> None:
        for partner, payload in self.pattern(self.index, self.count, iteration):
            proxy = self.held.get(f"peer{partner}")
            if proxy is not None:
                ctx.call(proxy, "ping", payload_bytes=payload)

    def do_run(self, ctx, request: Request, proxies):
        iterations, iter_time = request.data
        for iteration in range(iterations):
            yield ctx.sleep(iter_time)
            self._exchange(ctx, iteration)
            self.iterations_done += 1
        return self.index

    def do_step(self, ctx, request: Request, proxies):
        iteration, iter_time = request.data
        yield ctx.sleep(iter_time)
        self._exchange(ctx, iteration)
        self.iterations_done += 1
        return self.index


@dataclass(frozen=True)
class NasKernelSpec:
    """Shape parameters of one kernel skeleton."""

    name: str
    ao_count: int
    iterations: int
    iter_time_s: float
    pattern_factory: Callable[[], Pattern]
    #: Modelled per-worker deployment payload (code/class shipping); part
    #: of the application traffic in both DGC and no-DGC runs.
    deployment_bytes: int = 4_000
    #: Synchronous variant: every exchange expects a reply and each
    #: iteration barriers on all of them (see :class:`NasWorker`).
    reply_barrier: bool = False

    def scaled(self, ao_count: int) -> "NasKernelSpec":
        """Same kernel shape with a different worker count."""
        return NasKernelSpec(
            self.name,
            ao_count,
            self.iterations,
            self.iter_time_s,
            self.pattern_factory,
            self.deployment_bytes,
            self.reply_barrier,
        )


#: Laptop-scale defaults preserving the paper's relative profiles:
#: CG long + chatty, FT medium + all-to-all-heavy, EP seconds + silent.
KERNELS: Dict[str, NasKernelSpec] = {
    "CG": NasKernelSpec(
        "CG", 64, iterations=75, iter_time_s=20.0,
        pattern_factory=lambda: cg_pattern(payload_bytes=20_000),
    ),
    "EP": NasKernelSpec(
        "EP", 64, iterations=1, iter_time_s=8.0,
        pattern_factory=ep_pattern,
    ),
    "FT": NasKernelSpec(
        "FT", 64, iterations=20, iter_time_s=20.0,
        pattern_factory=lambda: ft_pattern(payload_bytes=1_200),
    ),
}


#: The paper's worker count (class C kernels, 256 active objects).
PAPER_AO_COUNT = 256


def paper_scale_kernels() -> Dict[str, NasKernelSpec]:
    """The paper's 256-worker variants (slow: minutes of wall time)."""
    return {name: spec.scaled(PAPER_AO_COUNT) for name, spec in KERNELS.items()}


def kernel_spec(
    name: str,
    *,
    ao_count: Optional[int] = None,
    iterations: Optional[int] = None,
    iter_time_s: Optional[float] = None,
    payload_bytes: Optional[int] = None,
    reply_barrier: Optional[bool] = None,
) -> NasKernelSpec:
    """One kernel spec with harness-level overrides applied.

    ``payload_bytes`` re-parameterizes the communication pattern (CG's
    boundary vectors, FT's transpose blocks); EP has no payload to
    override.  ``reply_barrier`` switches the kernel to its synchronous
    variant (every exchange replied to, iterations barrier on the
    futures).  The remaining knobs reshape the run without changing the
    kernel's communication structure.
    """
    try:
        base = KERNELS[name.upper()]
    except KeyError:
        raise SimulationError(
            f"unknown NAS kernel {name!r} (have: {', '.join(KERNELS)})"
        ) from None
    factory = base.pattern_factory
    if payload_bytes is not None:
        kernel = base.name
        if kernel == "CG":
            factory = lambda: cg_pattern(payload_bytes=payload_bytes)  # noqa: E731
        elif kernel == "FT":
            factory = lambda: ft_pattern(payload_bytes=payload_bytes)  # noqa: E731
        # EP is silent until the final reduction: nothing to resize.
    return NasKernelSpec(
        base.name,
        ao_count if ao_count is not None else base.ao_count,
        iterations if iterations is not None else base.iterations,
        iter_time_s if iter_time_s is not None else base.iter_time_s,
        factory,
        base.deployment_bytes,
        reply_barrier if reply_barrier is not None else base.reply_barrier,
    )


@dataclass
class NasRunResult:
    """Everything Figs. 8 and 9 need from one run."""

    kernel: str
    dgc_enabled: bool
    app_time_s: float
    dgc_time_s: float
    bandwidth_mb: float
    app_bandwidth_mb: float
    dgc_bandwidth_mb: float
    collected_cyclic: int
    collected_acyclic: int
    dead_letters: int
    ao_count: int
    #: Kernel statistics for the perf harness (events executed, queue
    #: high-water mark, final simulated time).
    events_fired: int = 0
    peak_pending_events: int = 0
    sim_time_s: float = 0.0
    #: The world itself, kept only when ``keep_world=True`` (equivalence
    #: tests inspect ``world.stats`` and ``world.tracer`` afterwards).
    world: Optional[object] = None


def run_nas_kernel(
    spec: NasKernelSpec,
    *,
    dgc: Optional[DgcConfig],
    topology: Optional[Topology] = None,
    seed: int = 0,
    collect_timeout: float = 36_000.0,
    safety_checks: bool = False,
    beat_slots: Optional[Union[int, str]] = None,
    batched_beats: Optional[bool] = None,
    aggregate_site_pairs: Optional[bool] = None,
    aggregation: Optional[str] = None,
    trace: bool = False,
    keep_world: bool = False,
) -> NasRunResult:
    """Run one kernel once; see the module docstring for the protocol.

    ``beat_slots`` / ``batched_beats`` / ``aggregate_site_pairs`` /
    ``aggregation`` override the corresponding DGC config knobs (see
    :class:`repro.core.config.DgcConfig`): ``aggregation`` picks the
    delivery core by name (``per-event`` / ``per-entry`` / ``exact`` /
    ``relaxed``); ``batched_beats=False`` restores per-event scheduling
    and per-envelope delivery, ``aggregate_site_pairs=False`` keeps the
    per-entry batched pulse — the A/B axes of the NAS fabric benchmark.
    """
    if dgc is not None:
        overrides = {}
        if beat_slots is not None:
            overrides["beat_slots"] = beat_slots
        if batched_beats is not None:
            overrides["batched_beats"] = batched_beats
        if aggregate_site_pairs is not None:
            overrides["aggregate_site_pairs"] = aggregate_site_pairs
        if aggregation is not None:
            overrides["aggregation"] = aggregation
        elif (
            ("batched_beats" in overrides or "aggregate_site_pairs" in overrides)
            and dgc.aggregation is not None
        ):
            # Boolean overrides must win over a base config's named
            # mode, or normalization would resurrect it.
            overrides["aggregation"] = None
        if overrides:
            dgc = dgc.with_overrides(**overrides)
    world = World(
        topology if topology is not None else uniform_topology(32),
        dgc=dgc,
        seed=seed,
        trace=trace,
        safety_checks=safety_checks,
    )
    driver = world.create_driver(name=f"nas-{spec.name}-driver")
    ctx = driver.context
    pattern = spec.pattern_factory()
    workers = [
        ctx.create(
            NasWorker(index, spec.ao_count, pattern),
            name=f"{spec.name.lower()}{index}",
        )
        for index in range(spec.ao_count)
    ]
    # Deployment traffic + the complete reference graph (global barriers).
    for index, worker in enumerate(workers):
        others = [w for j, w in enumerate(workers) if j != index]
        keys = [f"peer{j}" for j in range(spec.ao_count) if j != index]
        ctx.call(
            worker,
            "hold",
            refs=others,
            data=keys,
            payload_bytes=spec.deployment_bytes,
        )
    settled = world.kernel.run_until_quiescent(
        lambda: not world.inflight_pinned(), 0.5, 600.0
    )
    if not settled:
        raise SimulationError("NAS deployment did not settle")

    start_time = world.kernel.now
    horizon = spec.iterations * spec.iter_time_s * 4 + 3_600.0
    if spec.reply_barrier:
        # Synchronous variant: one ``step`` request per worker per
        # iteration, each with a future; the driver barriers on all of
        # them before launching the next iteration, so the future/reply
        # path carries one reply per worker per iteration.
        futures: List = []
        for iteration in range(spec.iterations):
            wave = [
                ctx.call(worker, "step",
                         data=(iteration, spec.iter_time_s),
                         expect_reply=True)
                for worker in workers
            ]
            if not world.kernel.run_until_quiescent(
                lambda: all(future.resolved for future in wave), 1.0, horizon
            ):
                raise SimulationError(
                    f"NAS {spec.name} barrier {iteration} did not clear "
                    f"in {horizon}s"
                )
            futures = wave
    else:
        futures = [
            ctx.call(worker, "run", data=(spec.iterations, spec.iter_time_s),
                     expect_reply=True)
            for worker in workers
        ]

    def result_ready() -> bool:
        if not all(future.resolved for future in futures):
            return False
        if world.inflight_pinned():
            return False
        return all(a.is_idle() for a in world.live_non_roots())

    if not world.kernel.run_until_quiescent(result_ready, 1.0, horizon):
        raise SimulationError(f"NAS {spec.name} did not finish in {horizon}s")
    result_time = world.kernel.now
    app_time = result_time - start_time

    if dgc is None:
        # Paper protocol: the no-DGC implementation terminates explicitly.
        for worker_proxy in workers:
            activity = world.find_activity(worker_proxy.activity_id)
            if activity is not None:
                activity.terminate("explicit")
        release_all(driver, workers)
        dgc_time = 0.0
    else:
        release_all(driver, workers)
        if not world.run_until_collected(collect_timeout, check_interval=5.0):
            raise SimulationError(
                f"NAS {spec.name}: DGC did not collect within {collect_timeout}s "
                f"({len(world.live_non_roots())} survivors)"
            )
        dgc_time = world.kernel.now - result_time

    accountant = world.accountant
    return NasRunResult(
        kernel=spec.name,
        dgc_enabled=dgc is not None,
        app_time_s=app_time,
        dgc_time_s=dgc_time,
        bandwidth_mb=accountant.megabytes(),
        app_bandwidth_mb=accountant.app_bytes / 1e6,
        dgc_bandwidth_mb=accountant.dgc_bytes / 1e6,
        collected_cyclic=world.stats.collected_cyclic,
        collected_acyclic=world.stats.collected_acyclic,
        dead_letters=world.stats.dead_letters,
        ao_count=spec.ao_count,
        events_fired=world.kernel.fired_count,
        peak_pending_events=getattr(world.kernel, "peak_pending_count", 0),
        sim_time_s=world.kernel.now,
        world=world if keep_world else None,
    )
