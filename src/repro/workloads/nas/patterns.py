"""Per-iteration communication patterns of the NAS kernel skeletons.

A pattern maps ``(worker_index, worker_count, iteration)`` to the list of
``(partner_index, payload_bytes)`` messages the worker sends after that
iteration's compute step.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

Pattern = Callable[[int, int, int], List[Tuple[int, int]]]

#: Small control/reduction message size (bytes).
REDUCTION_BYTES = 256


def cg_pattern(payload_bytes: int, reduce_every: int = 5) -> Pattern:
    """CG: nearest-neighbour vector exchanges plus periodic reductions.

    The conjugate-gradient kernel exchanges boundary vectors with row and
    column partners every iteration; every ``reduce_every`` iterations a
    scalar reduction converges on worker 0.
    """

    def pattern(index: int, count: int, iteration: int) -> List[Tuple[int, int]]:
        sends = [
            ((index + 1) % count, payload_bytes),
            ((index - 1) % count, payload_bytes),
        ]
        if iteration % reduce_every == reduce_every - 1 and index != 0:
            sends.append((0, REDUCTION_BYTES))
        return sends

    return pattern


def ep_pattern() -> Pattern:
    """EP: embarrassingly parallel — silence until one final reduction."""

    def pattern(index: int, count: int, iteration: int) -> List[Tuple[int, int]]:
        if index != 0:
            return [(0, REDUCTION_BYTES)]
        return []

    return pattern


def ft_pattern(payload_bytes: int) -> Pattern:
    """FT: 3-D FFT — an all-to-all transpose every iteration."""

    def pattern(index: int, count: int, iteration: int) -> List[Tuple[int, int]]:
        return [
            (partner, payload_bytes)
            for partner in range(count)
            if partner != index
        ]

    return pattern
