"""The DGC torture test (paper Sec. 5.3).

"A simple master/slave application where slaves continuously exchange
references between themselves and the master during at least ten minutes,
then become idle.  Thus a very complex reference graph is created and the
DGC has to destroy it after the ten minutes of intense activity."

Model:

* the master loops (via self-posting) for ``active_duration`` seconds,
  periodically seeding random slaves with references to other random
  slaves (and to itself, so master references circulate);
* each slave keeps a bounded rotating pool of received references and,
  while the deadline has not passed, forwards a random held reference to
  a random held peer after a short think time — reference exchange chains
  keep the graph churning;
* every activity holds a self-reference during the active phase (so
  nothing is ever trivially unreferenced mid-run) and drops it at its
  last iteration;
* after the deadline everything quiesces; the whole tangle — one big
  mostly-cyclic structure — becomes garbage and the DGC must collapse it
  (Fig. 10).

The driver drops its stubs right after construction: during the active
phase the structure is kept alive purely by activity, exactly the
situation Eq. 1 describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.core.config import DgcConfig
from repro.errors import SimulationError
from repro.net.topology import Topology, uniform_topology
from repro.runtime.request import Request
from repro.workloads.app import Peer, release_all
from repro.world import World


class TortureSlave(Peer):
    """A slave: runs an exchange loop, keeping a rotating reference pool.

    While its deadline has not passed, the slave is continuously busy
    (matching the paper's "slaves continuously exchange references ...
    then become idle"): each iteration it thinks for a short while, then
    sends a random held reference to a random held peer.  Incoming
    ``exchange`` requests are queued while it runs; their references
    enter the DGC reference graph at deserialization time and rotate
    into the pool when served.
    """

    def __init__(self, deadline: float, pool_size: int = 8,
                 think_time: float = 3.0, send_probability: float = 0.7) -> None:
        super().__init__()
        self.deadline = deadline
        self.pool_size = pool_size
        self.think_time = think_time
        self.send_probability = send_probability
        self._next_slot = 0
        self.exchanges = 0

    def do_exchange(self, ctx, request: Request, proxies):
        for proxy in proxies:
            self._store(ctx, f"pool{self._next_slot % self.pool_size}", proxy)
            self._next_slot += 1
        self.exchanges += 1
        return None

    def do_run(self, ctx, request: Request, proxies):
        while ctx.now < self.deadline:
            yield ctx.sleep(self.think_time * (0.5 + ctx.rng.random()))
            if ctx.rng.random() >= self.send_probability:
                continue
            pool = [p for p in self.held.values() if not p.released]
            if len(pool) < 2:
                continue
            target = ctx.rng.choice(pool)
            ref = ctx.rng.choice(pool)
            ctx.call(target, "exchange", refs=[ref], payload_bytes=64)
        # Last running iteration: release the self-reference so slaves
        # that end up unreferenced become *acyclic* garbage.
        self._discard(ctx, "self")
        return None


class TortureMaster(Peer):
    """The master: seeds exchange chains among the slaves."""

    def __init__(self, deadline: float, seed_period: float = 10.0,
                 seeds_per_round: int = 16) -> None:
        super().__init__()
        self.deadline = deadline
        self.seed_period = seed_period
        self.seeds_per_round = seeds_per_round
        self.rounds = 0

    def do_exchange(self, ctx, request: Request, proxies):
        # The master keeps circulated references in a bounded pool too
        # (they are served after its run loop completes, i.e. queued while
        # it is busy — exactly like a ProActive single-threaded body).
        for index, proxy in enumerate(proxies):
            self._store(ctx, f"pool{(self.rounds + index) % 8}", proxy)
        return None

    def do_run(self, ctx, request: Request, proxies):
        slaves = [
            proxy for key, proxy in self.held.items() if key.startswith("slave")
        ]
        while ctx.now < self.deadline:
            yield ctx.sleep(self.seed_period)
            self.rounds += 1
            if not slaves:
                continue
            for _ in range(min(self.seeds_per_round, len(slaves))):
                target = ctx.rng.choice(slaves)
                payload_ref = ctx.rng.choice(slaves)
                # Occasionally circulate the master's own reference, as in
                # the paper ("between themselves and the master").
                if ctx.rng.random() < 0.25:
                    ctx.call(target, "exchange", refs=[ctx.self_ref()],
                             payload_bytes=64)
                else:
                    ctx.call(target, "exchange", refs=[payload_ref],
                             payload_bytes=64)
        # The master's job is done: it releases its slave directory and
        # self-reference, keeping only its circulated pool.  Slaves that no
        # longer appear in anybody's pool become *acyclic* garbage (the
        # paper's "some acyclic garbage is quickly reclaimed" phase); the
        # surviving tangle is cyclic and needs the consensus.
        self._discard(ctx, "self")
        for key in [k for k in self.held if k.startswith("slave")]:
            self._discard(ctx, key)
        return None


@dataclass
class TortureResult:
    """Fig. 10's quantities for one run."""

    ttb: float
    tta: float
    ao_count: int
    active_duration_s: float
    last_collected_s: Optional[float]
    all_collected: bool
    total_bandwidth_mb: float
    app_bandwidth_mb: float
    dgc_bandwidth_mb: float
    collected_cyclic: int
    collected_acyclic: int
    dead_letters: int
    #: Sampled (time, idle_count, collected_count) series for the figure.
    series: List[tuple]
    #: Kernel statistics for the perf harness (events executed, queue
    #: high-water mark, final simulated time).
    events_fired: int = 0
    peak_pending_events: int = 0
    sim_time_s: float = 0.0
    #: The world itself, kept only when ``keep_world=True`` (equivalence
    #: tests inspect ``world.stats`` and ``world.tracer`` afterwards).
    world: Optional[object] = None


def run_torture(
    *,
    dgc: Optional[DgcConfig],
    slave_count: int = 320,
    active_duration: float = 600.0,
    topology: Optional[Topology] = None,
    seed: int = 0,
    sample_period: float = 10.0,
    collect_timeout: float = 36_000.0,
    initial_pool: int = 4,
    safety_checks: bool = False,
    beat_slots: Optional[Union[int, str]] = None,
    batched_beats: Optional[bool] = None,
    aggregate_site_pairs: Optional[bool] = None,
    aggregation: Optional[str] = None,
    trace: bool = False,
    keep_world: bool = False,
) -> TortureResult:
    """Run the torture test and sample the Fig. 10 curves.

    ``beat_slots`` / ``batched_beats`` / ``aggregate_site_pairs`` /
    ``aggregation`` override the corresponding DGC config knobs (see
    :class:`repro.core.config.DgcConfig`): the slot count (an int, or
    ``"auto"`` for the adaptive per-node grid) quantizes the start
    jitter so heartbeats coalesce into beat buckets, ``aggregation``
    picks the delivery core by name (``per-event`` / ``per-entry`` /
    ``exact`` / ``relaxed``), and the boolean pair
    (``batched_beats=False`` restores per-event scheduling,
    ``aggregate_site_pairs=False`` keeps the per-entry batched pulse)
    stays as the deprecated spelling of the first three modes — the A/B
    axes of the Fig. 10 perf benchmark.
    """
    if dgc is not None:
        overrides = {}
        if beat_slots is not None:
            overrides["beat_slots"] = beat_slots
        if batched_beats is not None:
            overrides["batched_beats"] = batched_beats
        if aggregate_site_pairs is not None:
            overrides["aggregate_site_pairs"] = aggregate_site_pairs
        if aggregation is not None:
            overrides["aggregation"] = aggregation
        elif (
            ("batched_beats" in overrides or "aggregate_site_pairs" in overrides)
            and dgc.aggregation is not None
        ):
            # Boolean overrides must win over a base config's named
            # mode, or normalization would resurrect it.
            overrides["aggregation"] = None
        if overrides:
            dgc = dgc.with_overrides(**overrides)
    world = World(
        topology if topology is not None else uniform_topology(32),
        dgc=dgc,
        seed=seed,
        trace=trace,
        safety_checks=safety_checks,
    )
    driver = world.create_driver(name="torture-driver")
    ctx = driver.context
    rng = world.rng_registry.stream("torture.setup")
    deadline = active_duration

    master = ctx.create(TortureMaster(deadline), name="master")
    # Per-slave deadline jitter: last running iterations spread out, so
    # the idle wave of Fig. 10 rises gradually rather than as a step.
    slaves = [
        ctx.create(
            TortureSlave(deadline + rng.uniform(0.0, 0.15 * active_duration)),
            name=f"slave{index}",
        )
        for index in range(slave_count)
    ]
    # Master knows itself and every slave; every slave knows itself, the
    # master and a few random peers.
    ctx.call(master, "hold", refs=[master], data=["self"])
    ctx.call(
        master,
        "hold",
        refs=slaves,
        data=[f"slave{index}" for index in range(slave_count)],
    )
    for index, slave in enumerate(slaves):
        peers = rng.sample(range(slave_count), k=min(initial_pool, slave_count))
        refs = [slave, master] + [slaves[p] for p in peers]
        keys = ["self", "master"] + [f"pool{j}" for j in range(len(peers))]
        ctx.call(slave, "hold", refs=refs, data=keys)

    ctx.call(master, "run")
    for slave in slaves:
        ctx.call(slave, "run")
    # main() returns: from here on, liveness comes from activity alone.
    release_all(driver, [master] + slaves)

    series: List[tuple] = []

    def sample() -> None:
        live = world.live_non_roots()
        idle = sum(1 for activity in live if activity.is_idle())
        collected = world.stats.collected_total
        series.append((world.kernel.now, idle, collected))
        if live or world.kernel.now < deadline:
            world.kernel.schedule(sample_period, sample, label="torture.sample")

    world.kernel.schedule(0.0, sample, label="torture.sample")

    all_collected = True
    if dgc is None:
        world.kernel.run_until_quiescent(
            lambda: all(a.is_idle() for a in world.live_non_roots())
            and not world.inflight_pinned(),
            5.0,
            active_duration + 3_600.0,
        )
        last_collected = None
        all_collected = False
    else:
        all_collected = world.run_until_collected(
            collect_timeout, check_interval=5.0
        )
        if not all_collected:
            raise SimulationError(
                f"torture: {len(world.live_non_roots())} survivors after "
                f"{collect_timeout}s"
            )
        last_collected = max(world.stats.collected_by_id.values())

    # Close the series with the final state (the periodic sampler may
    # have stopped between the penultimate sample and the last death).
    final_live = world.live_non_roots()
    series.append(
        (
            world.kernel.now,
            sum(1 for activity in final_live if activity.is_idle()),
            world.stats.collected_total,
        )
    )

    accountant = world.accountant
    return TortureResult(
        ttb=dgc.ttb if dgc else 0.0,
        tta=dgc.tta if dgc else 0.0,
        ao_count=slave_count + 1,
        active_duration_s=active_duration,
        last_collected_s=last_collected,
        all_collected=all_collected,
        total_bandwidth_mb=accountant.megabytes(),
        app_bandwidth_mb=accountant.app_bytes / 1e6,
        dgc_bandwidth_mb=accountant.dgc_bytes / 1e6,
        collected_cyclic=world.stats.collected_cyclic,
        collected_acyclic=world.stats.collected_acyclic,
        dead_letters=world.stats.dead_letters,
        series=series,
        events_fired=world.kernel.fired_count,
        peak_pending_events=getattr(world.kernel, "peak_pending_count", 0),
        sim_time_s=world.kernel.now,
        world=world if keep_world else None,
    )
