"""Wall-clock measurement primitives for the perf benchmark harness.

:class:`Stopwatch` times a block of real work; :class:`PerfReport`
aggregates named measurements and writes the ``BENCH_perf.json``
artifact whose trajectory is tracked across PRs (see PERFORMANCE.md).
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional


def current_git_sha(repo_root: Optional[Path] = None) -> str:
    """The repository's current commit (short SHA), or ``"unknown"``.

    Benchmark artifacts carry this in their ``meta`` block so a
    ``BENCH_*.json`` file is attributable to the exact code state that
    produced it — the perf trajectory across PRs needs provenance, not
    just timestamps.  A working tree with uncommitted changes (tracked
    files modified, staged or not) yields ``"<sha>-dirty"``: numbers
    measured on code that HEAD does not describe must say so.
    """
    root = repo_root if repo_root is not None else Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    if out.returncode != 0 or not sha:
        return "unknown"
    try:
        status = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return sha
    if status.returncode == 0 and status.stdout.strip():
        return sha + "-dirty"
    return sha


class Stopwatch:
    """A context-manager stopwatch over ``time.perf_counter``.

    ::

        with Stopwatch() as watch:
            run_torture(...)
        print(watch.elapsed)

    ``split(label)`` records intermediate marks without stopping.
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._stop: Optional[float] = None
        self.splits: Dict[str, float] = {}

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def start(self) -> "Stopwatch":
        self._start = time.perf_counter()
        self._stop = None
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() before start()")
        self._stop = time.perf_counter()
        return self.elapsed

    def split(self, label: str) -> float:
        """Record the elapsed time so far under ``label``."""
        value = self.elapsed
        self.splits[label] = value
        return value

    @property
    def running(self) -> bool:
        return self._start is not None and self._stop is None

    @property
    def elapsed(self) -> float:
        """Seconds from start to stop (or to now while running)."""
        if self._start is None:
            return 0.0
        end = self._stop if self._stop is not None else time.perf_counter()
        return end - self._start


@dataclass
class PerfMeasurement:
    """One benchmark's numbers (all wall-clock figures in seconds).

    ``peak_pending_events`` is ``None`` when the measured kernel does not
    maintain the counter (the naive baseline); the key is then omitted
    from the artifact rather than reporting a misleading 0.
    """

    name: str
    wall_time_s: float
    events_fired: int
    peak_pending_events: Optional[int]
    sim_time_s: float
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def events_per_second(self) -> float:
        """Simulator throughput: kernel events executed per wall second."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.events_fired / self.wall_time_s

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "wall_time_s": round(self.wall_time_s, 6),
            "events_fired": self.events_fired,
            "events_per_second": round(self.events_per_second, 1),
            "sim_time_s": round(self.sim_time_s, 3),
        }
        if self.peak_pending_events is not None:
            payload["peak_pending_events"] = self.peak_pending_events
        payload.update(self.extra)
        return payload


class PerfReport:
    """Collects :class:`PerfMeasurement` records and writes the JSON
    artifact.

    The file layout is flat and diff-friendly so the trajectory across
    PRs can be compared directly::

        {
          "schema": 1,
          "meta": {...},
          "benchmarks": {"torture_optimized": {...}, ...}
        }
    """

    SCHEMA = 1

    def __init__(
        self,
        meta: Optional[Dict[str, Any]] = None,
        *,
        pr_label: Optional[str] = None,
    ) -> None:
        self.meta: Dict[str, Any] = {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "created_unix": round(time.time(), 1),
            # Provenance: which code state produced this artifact.
            "git_sha": current_git_sha(),
        }
        if pr_label is not None:
            self.meta["pr_label"] = pr_label
        if meta:
            self.meta.update(meta)
        self.benchmarks: Dict[str, PerfMeasurement] = {}

    def add(self, measurement: PerfMeasurement) -> PerfMeasurement:
        self.benchmarks[measurement.name] = measurement
        return measurement

    def measure(
        self,
        name: str,
        watch: Stopwatch,
        kernel: Any,
        **extra: Any,
    ) -> PerfMeasurement:
        """Build a measurement from a stopped stopwatch and a kernel."""
        return self.add(
            PerfMeasurement(
                name=name,
                wall_time_s=watch.elapsed,
                events_fired=kernel.fired_count,
                peak_pending_events=getattr(kernel, "peak_pending_count", 0),
                sim_time_s=kernel.now,
                extra=extra,
            )
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.SCHEMA,
            "meta": self.meta,
            "benchmarks": {
                name: measurement.to_dict()
                for name, measurement in sorted(self.benchmarks.items())
            },
        }

    def write(self, path: Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path
