"""Performance measurement subsystem.

``repro.perf`` is the harness every perf-focused PR is judged against:

* :mod:`repro.perf.stopwatch` — :class:`Stopwatch` timing and the
  :class:`PerfReport` writer behind ``BENCH_perf.json`` and
  ``BENCH_fig10.json``;
* :mod:`repro.perf.baseline` — the naive O(referencers) protocol scans,
  patchable in under :func:`naive_mode` so the algorithmic speedup is
  measured against the code it replaced, on the same seed, in the same
  process.  (Scheduling baselines need no patching: per-event beats are
  a config knob, ``DgcConfig.batched_beats=False``.)

See PERFORMANCE.md for methodology; ``benchmarks/test_perf_throughput.py``
and ``benchmarks/test_perf_fig10.py`` are the entry points.
"""

from repro.perf.baseline import naive_mode
from repro.perf.stopwatch import (
    PerfMeasurement,
    PerfReport,
    Stopwatch,
    current_git_sha,
)

__all__ = [
    "PerfMeasurement",
    "PerfReport",
    "Stopwatch",
    "current_git_sha",
    "naive_mode",
]
