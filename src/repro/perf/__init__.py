"""Performance measurement subsystem.

``repro.perf`` is the harness every perf-focused PR is judged against:

* :mod:`repro.perf.stopwatch` — :class:`Stopwatch` timing and the
  :class:`PerfReport` writer behind ``BENCH_perf.json``;
* :mod:`repro.perf.baseline` — the pre-optimization hot paths, patchable
  in under :func:`naive_mode` so speedups are measured against the code
  they replaced, on the same seed, in the same process.

See PERFORMANCE.md for methodology and ``benchmarks/test_perf_throughput.py``
for the entry point.
"""

from repro.perf.baseline import naive_mode
from repro.perf.stopwatch import PerfMeasurement, PerfReport, Stopwatch

__all__ = [
    "PerfMeasurement",
    "PerfReport",
    "Stopwatch",
    "naive_mode",
]
