"""The pre-optimization ("naive") protocol scans, as a reversible patch set.

PR 1 introduced this module as a verbatim copy of every hot path it
replaced — protocol scans, kernel heap layout, network constant-factor
work — so the first benchmark could measure the whole overhaul against
the core it replaced in the same process.  With ``BENCH_perf.json`` now
recording the trajectory across PRs, the kernel/net constant-factor
patches have served their purpose (they mostly proved constant-factor
work and could not survive the beat-wheel refactor's new heap layout
anyway).  What remains is the *algorithmic* baseline, which stays
meaningful indefinitely:

* ``ReferencerTable.agree`` — the O(referencers) scan per call, versus
  the incrementally maintained agreement counter;
* ``ReferencerTable.expire`` — the unconditional full scan per tick,
  versus the amortized oldest-record lower bound.

Both naive implementations are the table's own ``agree_scan`` /
``expire_scan`` methods, which the property tests also use as ground
truth.  Neither changes simulation *behaviour* (event order, message
contents, collection decisions) — only the work done to compute the
same answers — which is exactly what the benchmark asserts.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.core.referencers import ReferencerTable


def _naive_agree(self, clock):
    return ReferencerTable.agree_scan(self, clock)


def _naive_expire(self, now, tta, base_ttb=0.0, honor_sender_ttb=False):
    return ReferencerTable.expire_scan(
        self, now, tta, base_ttb=base_ttb, honor_sender_ttb=honor_sender_ttb
    )


# Note: ``ReferencerTable.update`` is deliberately NOT patched.  The
# incremental-counter maintenance it performs is a cost *added* by the
# optimized core, so leaving it in place makes the naive core marginally
# faster than the true pre-optimization core (a conservative speedup
# measurement) — and it keeps the counter exact for tables that live
# across a ``naive_mode`` boundary, where the patched
# ``expire_scan``/``forget`` still adjust it.


_PATCHES = [
    (ReferencerTable, "agree", _naive_agree),
    (ReferencerTable, "expire", _naive_expire),
]


@contextmanager
def naive_mode() -> Iterator[None]:
    """Swap the naive protocol scans in; restore the optimized paths on
    exit."""
    saved = [(cls, name, cls.__dict__[name]) for cls, name, _ in _PATCHES]
    try:
        for cls, name, impl in _PATCHES:
            setattr(cls, name, impl)
        yield
    finally:
        for cls, name, impl in saved:
            setattr(cls, name, impl)
