"""The pre-optimization ("naive") hot paths, as a reversible patch set.

The perf benchmark must compare the optimized core against the core it
replaced *in the same process and on the same seed*, so the speedup and
the bit-identical-outcome check are both meaningful.  This module keeps
the replaced implementations verbatim and swaps them in under
:func:`naive_mode`:

* ``ReferencerTable.agree`` — the O(referencers) scan per call,
* ``ReferencerTable.expire`` — the unconditional full scan per tick,
* ``DgcCollector._broadcast`` — no per-tick agreement cache, one fresh
  ``DgcMessage`` allocated per referenced record,
* ``DgcCollector._increment_clock`` — eager ``repr(clock)`` kwargs even
  when tracing is disabled,
* ``ActivityClock`` comparisons — key-tuple allocation per comparison,
* ``FifoChannel.send`` — an f-string event label per envelope,
* ``Network.send``/``_channel`` — per-envelope topology lookups and
  unconditional fault-plan checks,
* ``Node.send_dgc_message``/``send_dgc_response`` — a fresh ``deliver``
  closure per envelope,
* ``World.all_collected`` — rebuilds the non-root list per call,
* ``World.run_until_collected`` — fixed-interval predicate polling
  instead of the event-driven kernel stop.

None of these change simulation *behaviour* (event order, message
contents, collection decisions) — only the work done to compute the same
answers — which is exactly what the benchmark asserts.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import repro.core.collector as _collector_module
import repro.core.protocol as _protocol_module
from repro.core import events
from repro.core.wire import DgcResponse
from repro.core.clock import ActivityClock
from repro.core.collector import DgcCollector
from repro.core.protocol import consensus_flag_for
from repro.core.referencers import ReferencerTable
from repro.core.wire import DgcMessage
from repro.net.channel import FifoChannel
from repro.net.message import (
    KIND_DGC_MESSAGE,
    KIND_DGC_RESPONSE,
    Envelope,
)
from repro.net.accounting import BandwidthAccountant, TrafficCategory
from repro.net.network import Network
from repro.runtime.node import Node
from repro.sim.kernel import Event, SimKernel
from repro.world import World


def _naive_agree(self, clock):
    return ReferencerTable.agree_scan(self, clock)


def _naive_expire(self, now, tta, base_ttb=0.0, honor_sender_ttb=False):
    return ReferencerTable.expire_scan(
        self, now, tta, base_ttb=base_ttb, honor_sender_ttb=honor_sender_ttb
    )


# Note: ``ReferencerTable.update`` is deliberately NOT patched.  The
# incremental-counter maintenance it performs is a cost *added* by this
# PR, so leaving it in place makes the naive core marginally faster than
# the true pre-PR core (a conservative speedup measurement) — and it
# keeps the counter exact for tables that live across a ``naive_mode``
# boundary, where the patched ``expire_scan``/``forget`` still adjust it.


def _naive_broadcast(self, is_idle=None):
    # Pre-PR: recompute idleness and ignore any per-tick hint.
    is_idle = self.activity.is_idle()
    declared_ttb = (
        self.current_ttb if self.config.heterogeneous_params else 0.0
    )
    for record in self.state.referenced.records():
        consensus = consensus_flag_for(self.state, record, is_idle)
        message = DgcMessage(
            sender=self.state.self_id,
            clock=self.state.clock,
            consensus=consensus,
            sender_ref=self.self_ref,
            sender_ttb=declared_ttb,
        )
        self._node.send_dgc_message(record.ref, message)
        self.messages_sent += 1
        record.messages_sent += 1
        record.needs_send = False
    if self.state.referenced.pop_removable():
        self._remove_referenced(already_popped=True)
    if self.config.dynamic_ttb:
        self._adjust_beat(is_idle)


def _naive_increment_clock(self, reason):
    self.state.increment_clock()
    self._tracer.record(
        self._kernel.now,
        events.DGC_CLOCK_INCREMENT,
        self.activity.id,
        reason=reason,
        clock=repr(self.state.clock),
    )


def _naive_all_collected(self):
    return not self.live_non_roots()


def _naive_run_until_collected(self, timeout, check_interval=1.0):
    return self.kernel.run_until_quiescent(
        self.all_collected, check_interval, timeout
    )


def _naive_clock_eq(self, other):
    if not isinstance(other, ActivityClock):
        return NotImplemented
    return (self.value, self.owner) == (other.value, other.owner)


def _naive_clock_ne(self, other):
    result = _naive_clock_eq(self, other)
    if result is NotImplemented:
        return result
    return not result


def _naive_clock_lt(self, other):
    return (self.value, self.owner) < (other.value, other.owner)


def _naive_clock_le(self, other):
    return (self.value, self.owner) <= (other.value, other.owner)


def _naive_clock_gt(self, other):
    return (self.value, self.owner) > (other.value, other.owner)


def _naive_clock_ge(self, other):
    return (self.value, self.owner) >= (other.value, other.owner)


def _naive_channel_send(self, envelope, sink):
    latency = self._latency_fn(envelope)
    if latency < 0:
        latency = 0.0
    delivery_time = self._kernel.now + latency
    if delivery_time < self._last_delivery_time:
        delivery_time = self._last_delivery_time
    self._last_delivery_time = delivery_time
    envelope.sent_at = self._kernel.now
    self.sent_count += 1
    self._kernel.schedule_at(
        delivery_time,
        self._deliver,
        envelope,
        sink,
        label=f"deliver:{self.source}->{self.dest}",
    )
    return delivery_time


def _naive_network_send(self, envelope):
    from repro.errors import UnknownDestinationError

    sink = self._sinks.get(envelope.dest_node)
    if sink is None:
        raise UnknownDestinationError(
            f"node {envelope.dest_node!r} is not registered"
        )
    if self.fault_plan.is_partitioned(envelope.source_node, envelope.dest_node):
        self.fault_plan.dropped_count += 1
        return
    if envelope.source_node == envelope.dest_node:
        self._kernel.schedule(
            0.0, self._deliver_local, envelope, sink, label="deliver:local"
        )
        return
    self.accountant.observe(envelope)
    channel = self._channel(envelope.source_node, envelope.dest_node)
    channel.send(envelope, self._dispatch)


def _naive_network_channel(self, source, dest):
    key = (source, dest)
    channel = self._channels.get(key)
    if channel is None:
        channel = FifoChannel(self._kernel, source, dest, self._latency)
        self._channels[key] = channel
    return channel


def _naive_send_dgc_message(self, target_ref, message, *, size_bytes=None):
    envelope = Envelope(
        source_node=self.name,
        dest_node=target_ref.node,
        kind=KIND_DGC_MESSAGE,
        size_bytes=(
            size_bytes
            if size_bytes is not None
            else self.wire_sizes.dgc_message_bytes
        ),
        payload=(target_ref.activity_id, message),
        deliver=lambda payload: None,
    )
    self.network.send(envelope)


def _naive_send_dgc_response(self, target_ref, response):
    envelope = Envelope(
        source_node=self.name,
        dest_node=target_ref.node,
        kind=KIND_DGC_RESPONSE,
        size_bytes=self.wire_sizes.dgc_response_bytes,
        payload=(target_ref.activity_id, response),
        deliver=lambda payload: None,
    )
    self.network.send(envelope)


def _naive_schedule_at(self, time, callback, *args, label=""):
    from repro.errors import SchedulingInPastError
    import heapq

    if time < self._now:
        raise SchedulingInPastError(
            f"cannot schedule {label or callback!r} at {time} < now {self._now}"
        )
    # Pre-PR heap layout: bare events ordered by ``Event.__lt__`` (one
    # Python call per sift step) instead of C-compared tuples.
    event = Event(time, next(self._seq), callback, args, label)
    heapq.heappush(self._heap, event)
    self._scheduled += 1
    return event


def _naive_step(self):
    import heapq

    while self._heap:
        event = heapq.heappop(self._heap)
        if event.cancelled:
            continue
        self._now = event.time
        self._fired += 1
        event.callback(*event.args)
        return True
    return False


def _naive_run(self, until=None, max_events=None):
    from repro.errors import SimulationError
    import heapq

    if self._running:
        raise SimulationError("kernel.run() is not reentrant")
    self._running = True
    fired = 0
    try:
        while self._heap:
            if max_events is not None and fired >= max_events:
                break
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            self._now = event.time
            self._fired += 1
            event.callback(*event.args)
            fired += 1
    finally:
        self._running = False
    if until is not None and self._now < until:
        self._now = until
    return fired


def _naive_pending_count(self):
    return sum(1 for event in self._heap if not event.cancelled)


def _naive_process_message(state, message, now, *, consensus_reached=False):
    if message.clock > state.clock:
        state.clock = message.clock
        state.parent = None
        state.depth = None
    state.referencers.update(
        message.sender,
        message.clock,
        message.consensus,
        now,
        sender_ttb=message.sender_ttb,
    )
    state.last_message_timestamp = now
    has_parent = state.parent is not None or state.owns_clock
    return DgcResponse(
        responder=state.self_id,
        clock=state.clock,
        has_parent=has_parent,
        consensus_reached=consensus_reached,
        depth=state.current_depth(),
    )


def _naive_observe(self, envelope):
    category = self._by_kind.get(envelope.kind)
    if category is None:
        category = TrafficCategory()
        self._by_kind[envelope.kind] = category
    category.add(envelope.size_bytes)
    pair = (envelope.source_node, envelope.dest_node)
    self._by_pair[pair] = self._by_pair.get(pair, 0) + envelope.size_bytes


_PATCHES = [
    (SimKernel, "schedule_at", _naive_schedule_at),
    (SimKernel, "step", _naive_step),
    (SimKernel, "run", _naive_run),
    (SimKernel, "pending_count", property(_naive_pending_count)),
    (BandwidthAccountant, "observe", _naive_observe),
    # ``process_message`` is patched in both the defining module and the
    # collector module, which imported it by name.
    (_protocol_module, "process_message", _naive_process_message),
    (_collector_module, "process_message", _naive_process_message),
    (ReferencerTable, "agree", _naive_agree),
    (ReferencerTable, "expire", _naive_expire),
    (DgcCollector, "_broadcast", _naive_broadcast),
    (DgcCollector, "_increment_clock", _naive_increment_clock),
    (ActivityClock, "__eq__", _naive_clock_eq),
    (ActivityClock, "__ne__", _naive_clock_ne),
    (ActivityClock, "__lt__", _naive_clock_lt),
    (ActivityClock, "__le__", _naive_clock_le),
    (ActivityClock, "__gt__", _naive_clock_gt),
    (ActivityClock, "__ge__", _naive_clock_ge),
    (FifoChannel, "send", _naive_channel_send),
    (Network, "send", _naive_network_send),
    (Network, "_channel", _naive_network_channel),
    (Node, "send_dgc_message", _naive_send_dgc_message),
    (Node, "send_dgc_response", _naive_send_dgc_response),
    (World, "all_collected", _naive_all_collected),
    (World, "run_until_collected", _naive_run_until_collected),
]


@contextmanager
def naive_mode() -> Iterator[None]:
    """Swap the naive hot paths in; restore the optimized ones on exit."""
    saved = [(cls, name, cls.__dict__[name]) for cls, name, _ in _PATCHES]
    try:
        for cls, name, impl in _PATCHES:
            setattr(cls, name, impl)
        yield
    finally:
        for cls, name, impl in saved:
            setattr(cls, name, impl)
