"""The traffic-kind registry: one place where every kind the fabric
routes is declared.

Historically the kind constants lived in :mod:`repro.net.message` and
their groupings (dispatch order, paired-payload shape, aggregate
markers, per-family byte rollups) were repeated across ``network.py``,
``node.py`` and ``accounting.py``.  This module centralises them:
adding a traffic kind means one :func:`register_kind` call here — the
dispatch tables, the accountant's family rollups and
:func:`describe_traffic` renderings all derive from the registry.

Kinds register at import time (module bottom); the derived tuples and
frozensets are rebound on every registration, so registrations are
visible to code that reads them through the module — the accountant's
family rollups and :meth:`~repro.net.accounting.BandwidthAccountant.describe`
do exactly that.  The fabric's *dispatch-shape* sets
(:data:`PAIRED_PAYLOAD_KINDS`, :data:`AGGREGATE_KINDS` keys) are bound
by ``network.py``/``node.py`` at their import for hot-path speed, so a
kind that needs the paired payload shape must be registered before
those modules are imported (i.e. from a module imported ahead of world
construction); plain single-object kinds — everything the naming
service adds — can register at any time.  The binders record
themselves via :func:`bind_dispatch_shapes`, and :func:`register_kind`
raises on a too-late paired/aggregate registration instead of silently
routing the kind down the single-object lane (the static
``KIND-late-paired`` rule in :mod:`repro.analysis` catches the same
mistake before it runs).  :mod:`repro.net.message` re-exports
everything for backward compatibility.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: Category constants for the bandwidth accountant and the typed fabric.
KIND_APP_REQUEST = "app.request"
KIND_APP_REPLY = "app.reply"
KIND_DGC_MESSAGE = "dgc.message"
KIND_DGC_RESPONSE = "dgc.response"
KIND_REGISTRY_LOOKUP = "registry.lookup"
KIND_REGISTRY_REPLY = "registry.reply"
KIND_REGISTRY_BIND = "registry.bind"
KIND_REGISTRY_INVALIDATE = "registry.invalidate"
KIND_REGISTRY_RENEW = "registry.renew"
#: Batched replica pushes from the beat-quantized coherence channel
#: (one multi-binding message per destination per lease beat); the
#: eager baseline's per-binding pushes ride ``registry.bind`` instead,
#: so the A/B byte split is visible per kind in the accountant.
KIND_REGISTRY_PUSH = "registry.push"

#: Every kind the unified fabric routes, in dispatch-priority order
#: (DGC first: it outnumbers the rest by an order of magnitude at scale).
ALL_KINDS: Tuple[str, ...] = ()

#: Kinds whose typed form is an ``(item, payload)`` pair (the DGC fast
#: lane addresses a per-activity collector, so the activity id travels
#: next to the protocol message).  For every other kind the typed form
#: is a single object and ``payload`` rides along as ``None``.  The
#: legacy ``Envelope`` payload shape follows the same rule: a
#: ``(item, payload)`` tuple for paired kinds, the bare item otherwise.
PAIRED_PAYLOAD_KINDS: frozenset = frozenset()

#: Site-pair aggregate markers: in the columnar pulse, a run of DGC
#: messages staged back-to-back on the same channel for the same
#: delivery instant rides **one** pulse entry whose item/payload columns
#: hold flat ``(target_id, message)`` lists.  The aggregate kinds are
#: internal to the fabric — they never appear on the wire, in the
#: accountant (each constituent is charged at its own kind and modeled
#: size) or in node-facing sinks (the destination unwraps them through a
#: dedicated batch sink).  Keyed by the base kind they aggregate.
AGGREGATE_KINDS: Dict[str, str] = {}

#: Per-family rollups (``BandwidthAccountant.app_bytes`` etc.) — derived
#: from each kind's declared family, so a new ``registry.*`` kind is
#: counted by ``registry_bytes`` without touching the accountant.
APP_KINDS: Tuple[str, ...] = ()
DGC_KINDS: Tuple[str, ...] = ()
REGISTRY_KINDS: Tuple[str, ...] = ()

_FAMILY_ROLLUPS = {"app": "APP_KINDS", "dgc": "DGC_KINDS",
                   "registry": "REGISTRY_KINDS"}

#: Modules that snapshot the dispatch-shape sets at their import
#: (``network.py`` binds the aggregate fast-lane constants, ``node.py``
#: the typed-sink shapes).  Each calls :func:`bind_dispatch_shapes`
#: right after snapshotting; once any binder is recorded, a
#: paired-payload or aggregate registration arrives too late to be seen
#: by the hot path, so :func:`register_kind` rejects it instead of
#: silently routing the kind down the single-object lane.
_DISPATCH_SHAPE_BINDERS: Tuple[str, ...] = ()


def bind_dispatch_shapes(binder: str) -> None:
    """Record that *binder* has snapshot the dispatch-shape sets.

    Called by ``network.py``/``node.py`` at the end of their import.
    From this point on, registering a kind with ``paired=True`` or an
    ``aggregate`` marker raises — the snapshot would not include it.
    Plain single-object kinds stay registrable at any time.
    """
    global _DISPATCH_SHAPE_BINDERS
    if binder not in _DISPATCH_SHAPE_BINDERS:
        _DISPATCH_SHAPE_BINDERS = _DISPATCH_SHAPE_BINDERS + (binder,)


def register_kind(
    kind: str,
    *,
    paired: bool = False,
    aggregate: Optional[str] = None,
    family: Optional[str] = None,
) -> str:
    """Declare one traffic kind and rebind the derived groupings.

    ``paired`` marks the ``(item, payload)`` typed form, ``aggregate``
    names the fabric-internal site-pair aggregate marker (if the kind
    supports run coalescing), ``family`` the byte-rollup family (default:
    the kind's dot-prefix).  Returns ``kind`` so declarations read as
    assignments.
    """
    global ALL_KINDS, PAIRED_PAYLOAD_KINDS
    if kind in ALL_KINDS:
        raise ValueError(f"traffic kind {kind!r} registered twice")
    if (paired or aggregate is not None) and _DISPATCH_SHAPE_BINDERS:
        raise RuntimeError(
            f"traffic kind {kind!r} needs the paired-payload/aggregate "
            f"dispatch shape, but "
            f"{', '.join(_DISPATCH_SHAPE_BINDERS)} already bound the "
            f"dispatch-shape sets at import — register it at the top "
            f"level of repro.net.kinds (before network/node import) so "
            f"the fast path can see it"
        )
    ALL_KINDS = ALL_KINDS + (kind,)
    if paired:
        PAIRED_PAYLOAD_KINDS = PAIRED_PAYLOAD_KINDS | {kind}
    if aggregate is not None:
        AGGREGATE_KINDS[kind] = aggregate
    family = family if family is not None else kind.split(".", 1)[0]
    rollup = _FAMILY_ROLLUPS.get(family)
    if rollup is not None:
        globals()[rollup] = globals()[rollup] + (kind,)
    return kind


def describe_traffic(kind: str, source: str, dest: str, size_bytes: int) -> str:
    """The one uniform rendering of a unit of traffic, shared by
    ``Envelope.__repr__`` and the accountant so traces stay greppable by
    kind regardless of which sink carried the message."""
    return f"{kind} {source}->{dest} {size_bytes}B"


# ----------------------------------------------------------------------
# The built-in kinds, in dispatch-priority order.
# ----------------------------------------------------------------------

register_kind(KIND_DGC_MESSAGE, paired=True, aggregate="dgc.message[]")
register_kind(KIND_DGC_RESPONSE, paired=True, aggregate="dgc.response[]")
register_kind(KIND_APP_REQUEST)
register_kind(KIND_APP_REPLY)
register_kind(KIND_REGISTRY_LOOKUP)
register_kind(KIND_REGISTRY_REPLY)
register_kind(KIND_REGISTRY_BIND)
register_kind(KIND_REGISTRY_INVALIDATE)
register_kind(KIND_REGISTRY_RENEW)
register_kind(KIND_REGISTRY_PUSH)
