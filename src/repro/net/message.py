"""Message envelopes and the wire-size model.

The paper states DGC messages and responses are "of fixed size"
(Sec. 4.3); application messages carry payloads whose size depends on the
workload.  The :class:`WireSizeModel` centralises the byte model so that
the bandwidth tables (Fig. 8) are computed from one tunable place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable


#: Categories used by the bandwidth accountant.
KIND_APP_REQUEST = "app.request"
KIND_APP_REPLY = "app.reply"
KIND_DGC_MESSAGE = "dgc.message"
KIND_DGC_RESPONSE = "dgc.response"
KIND_REGISTRY_LOOKUP = "registry.lookup"
KIND_REGISTRY_REPLY = "registry.reply"

#: Every kind the unified fabric routes, in dispatch-priority order
#: (DGC first: it outnumbers the rest by an order of magnitude at scale).
ALL_KINDS = (
    KIND_DGC_MESSAGE,
    KIND_DGC_RESPONSE,
    KIND_APP_REQUEST,
    KIND_APP_REPLY,
    KIND_REGISTRY_LOOKUP,
    KIND_REGISTRY_REPLY,
)

#: Kinds whose typed form is an ``(item, payload)`` pair (the DGC fast
#: lane addresses a per-activity collector, so the activity id travels
#: next to the protocol message).  For every other kind the typed form
#: is a single object and ``payload`` rides along as ``None``.  The
#: legacy :class:`Envelope` payload shape follows the same rule: a
#: ``(item, payload)`` tuple for paired kinds, the bare item otherwise.
PAIRED_PAYLOAD_KINDS = frozenset({KIND_DGC_MESSAGE, KIND_DGC_RESPONSE})

#: Site-pair aggregate markers: in the columnar pulse, a run of DGC
#: messages staged back-to-back on the same channel for the same
#: delivery instant rides **one** pulse entry whose item/payload columns
#: hold flat ``(target_id, message)`` lists.  The aggregate kinds are
#: internal to the fabric — they never appear on the wire, in the
#: accountant (each constituent is charged at its own kind and modeled
#: size) or in node-facing sinks (the destination unwraps them through a
#: dedicated batch sink).  Keyed by the base kind they aggregate.
AGGREGATE_KINDS = {
    KIND_DGC_MESSAGE: "dgc.message[]",
    KIND_DGC_RESPONSE: "dgc.response[]",
}


def describe_traffic(kind: str, source: str, dest: str, size_bytes: int) -> str:
    """The one uniform rendering of a unit of traffic, shared by
    :meth:`Envelope.__repr__` and the accountant so traces stay
    greppable by kind regardless of which sink carried the message."""
    return f"{kind} {source}->{dest} {size_bytes}B"


@dataclass(slots=True)
class Envelope:
    """A unit of transmission between two nodes.

    ``payload`` is an arbitrary object handed to the destination node's
    dispatcher; ``size_bytes`` is the modelled TCP payload size;
    ``kind`` classifies the traffic for accounting.

    Slotted and id-less: one envelope exists per simulated transmission,
    so the per-instance ``__dict__`` and the old global id counter were
    measurable allocation overhead on large runs.
    """

    source_node: str
    dest_node: str
    kind: str
    size_bytes: int
    payload: Any
    deliver: Callable[[Any], None]
    sent_at: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            "Envelope("
            + describe_traffic(
                self.kind, self.source_node, self.dest_node, self.size_bytes
            )
            + ")"
        )


@dataclass(frozen=True)
class WireSizeModel:
    """Byte sizes for the different message families.

    Defaults approximate Java RMI serialized forms: a DGC message carries a
    sender id, a named clock and a boolean; a DGC response carries a named
    clock and two booleans.  Application requests have a fixed header plus
    the workload-declared payload; every embedded remote reference costs
    ``reference_bytes`` (a serialized stub).
    """

    dgc_message_bytes: int = 64
    dgc_response_bytes: int = 48
    request_header_bytes: int = 96
    reply_header_bytes: int = 64
    reference_bytes: int = 128
    #: Registry traffic (paper Sec. 4.1: "anyone can look [registered
    #: objects] up at any time"): a lookup carries a name, a reply
    #: carries at most one serialized stub.
    registry_lookup_bytes: int = 48
    registry_reply_header_bytes: int = 32

    def request_size(self, payload_bytes: int, reference_count: int) -> int:
        """Wire size of an application request."""
        return (
            self.request_header_bytes
            + payload_bytes
            + reference_count * self.reference_bytes
        )

    def reply_size(self, payload_bytes: int, reference_count: int) -> int:
        """Wire size of an application reply (future update)."""
        return (
            self.reply_header_bytes
            + payload_bytes
            + reference_count * self.reference_bytes
        )

    def registry_lookup_size(self) -> int:
        """Wire size of a registry lookup request."""
        return self.registry_lookup_bytes

    def registry_reply_size(self, found: bool) -> int:
        """Wire size of a registry reply (one stub when the name resolved)."""
        return self.registry_reply_header_bytes + (
            self.reference_bytes if found else 0
        )
