"""Message envelopes and the wire-size model.

The paper states DGC messages and responses are "of fixed size"
(Sec. 4.3); application messages carry payloads whose size depends on the
workload.  The :class:`WireSizeModel` centralises the byte model so that
the bandwidth tables (Fig. 8) are computed from one tunable place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable


#: Categories used by the bandwidth accountant.
KIND_APP_REQUEST = "app.request"
KIND_APP_REPLY = "app.reply"
KIND_DGC_MESSAGE = "dgc.message"
KIND_DGC_RESPONSE = "dgc.response"


@dataclass(slots=True)
class Envelope:
    """A unit of transmission between two nodes.

    ``payload`` is an arbitrary object handed to the destination node's
    dispatcher; ``size_bytes`` is the modelled TCP payload size;
    ``kind`` classifies the traffic for accounting.

    Slotted and id-less: one envelope exists per simulated transmission,
    so the per-instance ``__dict__`` and the old global id counter were
    measurable allocation overhead on large runs.
    """

    source_node: str
    dest_node: str
    kind: str
    size_bytes: int
    payload: Any
    deliver: Callable[[Any], None]
    sent_at: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Envelope({self.kind} "
            f"{self.source_node}->{self.dest_node}, {self.size_bytes}B)"
        )


@dataclass(frozen=True)
class WireSizeModel:
    """Byte sizes for the different message families.

    Defaults approximate Java RMI serialized forms: a DGC message carries a
    sender id, a named clock and a boolean; a DGC response carries a named
    clock and two booleans.  Application requests have a fixed header plus
    the workload-declared payload; every embedded remote reference costs
    ``reference_bytes`` (a serialized stub).
    """

    dgc_message_bytes: int = 64
    dgc_response_bytes: int = 48
    request_header_bytes: int = 96
    reply_header_bytes: int = 64
    reference_bytes: int = 128

    def request_size(self, payload_bytes: int, reference_count: int) -> int:
        """Wire size of an application request."""
        return (
            self.request_header_bytes
            + payload_bytes
            + reference_count * self.reference_bytes
        )

    def reply_size(self, payload_bytes: int, reference_count: int) -> int:
        """Wire size of an application reply (future update)."""
        return (
            self.reply_header_bytes
            + payload_bytes
            + reference_count * self.reference_bytes
        )
