"""Message envelopes and the wire-size model.

The paper states DGC messages and responses are "of fixed size"
(Sec. 4.3); application messages carry payloads whose size depends on the
workload.  The :class:`WireSizeModel` centralises the byte model so that
the bandwidth tables (Fig. 8) are computed from one tunable place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

# Kind constants and their groupings live in the central registry
# (:mod:`repro.net.kinds`); re-exported here for backward compatibility —
# most of the codebase historically imported them from this module.
# These re-exports are import-time snapshots: a `register_kind` call
# after this module loads rebinds the tuples in `repro.net.kinds` only
# (the shared AGGREGATE_KINDS dict stays live either way).  Code that
# must see late registrations reads through the kinds module, as the
# accountant's family rollups do.
from repro.net.kinds import (  # noqa: F401  (re-exports)
    AGGREGATE_KINDS,
    ALL_KINDS,
    APP_KINDS,
    DGC_KINDS,
    KIND_APP_REPLY,
    KIND_APP_REQUEST,
    KIND_DGC_MESSAGE,
    KIND_DGC_RESPONSE,
    KIND_REGISTRY_BIND,
    KIND_REGISTRY_INVALIDATE,
    KIND_REGISTRY_LOOKUP,
    KIND_REGISTRY_PUSH,
    KIND_REGISTRY_RENEW,
    KIND_REGISTRY_REPLY,
    PAIRED_PAYLOAD_KINDS,
    REGISTRY_KINDS,
    describe_traffic,
)


@dataclass(slots=True)
class Envelope:
    """A unit of transmission between two nodes.

    ``payload`` is an arbitrary object handed to the destination node's
    dispatcher; ``size_bytes`` is the modelled TCP payload size;
    ``kind`` classifies the traffic for accounting.

    Slotted and id-less: one envelope exists per simulated transmission,
    so the per-instance ``__dict__`` and the old global id counter were
    measurable allocation overhead on large runs.
    """

    source_node: str
    dest_node: str
    kind: str
    size_bytes: int
    payload: Any
    deliver: Callable[[Any], None]
    sent_at: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            "Envelope("
            + describe_traffic(
                self.kind, self.source_node, self.dest_node, self.size_bytes
            )
            + ")"
        )


@dataclass(frozen=True)
class WireSizeModel:
    """Byte sizes for the different message families.

    Defaults approximate Java RMI serialized forms: a DGC message carries a
    sender id, a named clock and a boolean; a DGC response carries a named
    clock and two booleans.  Application requests have a fixed header plus
    the workload-declared payload; every embedded remote reference costs
    ``reference_bytes`` (a serialized stub).
    """

    dgc_message_bytes: int = 64
    dgc_response_bytes: int = 48
    request_header_bytes: int = 96
    reply_header_bytes: int = 64
    reference_bytes: int = 128
    #: Registry traffic (paper Sec. 4.1: "anyone can look [registered
    #: objects] up at any time"): a lookup carries a name, a reply
    #: carries at most one serialized stub.
    registry_lookup_bytes: int = 48
    registry_reply_header_bytes: int = 32
    #: Naming-service control traffic: a bind/unbind update carries a
    #: name (plus one stub when binding); invalidations and lease
    #: renewals are batched — one header plus one serialized name per
    #: entry (the lease sweep flushes a whole beat's renewals as one
    #: message per authority, like a heartbeat).
    registry_update_bytes: int = 64
    registry_batch_header_bytes: int = 32
    registry_name_bytes: int = 24

    def request_size(self, payload_bytes: int, reference_count: int) -> int:
        """Wire size of an application request."""
        return (
            self.request_header_bytes
            + payload_bytes
            + reference_count * self.reference_bytes
        )

    def reply_size(self, payload_bytes: int, reference_count: int) -> int:
        """Wire size of an application reply (future update)."""
        return (
            self.reply_header_bytes
            + payload_bytes
            + reference_count * self.reference_bytes
        )

    def registry_lookup_size(self) -> int:
        """Wire size of a registry lookup request."""
        return self.registry_lookup_bytes

    def registry_reply_size(self, found: bool) -> int:
        """Wire size of a registry reply (one stub when the name resolved)."""
        return self.registry_reply_header_bytes + (
            self.reference_bytes if found else 0
        )

    def registry_update_size(self, with_ref: bool) -> int:
        """Wire size of a bind (carries a stub) or unbind update."""
        return self.registry_update_bytes + (
            self.reference_bytes if with_ref else 0
        )

    def registry_ack_size(self) -> int:
        """Wire size of a bind/unbind acknowledgement."""
        return self.registry_reply_header_bytes

    def registry_batch_size(self, name_count: int) -> int:
        """Wire size of a batched invalidation / lease-renewal message
        (one header, one serialized name per entry).

        Priced per constituent: a batch of N names costs exactly the
        same name bytes as N single-name messages, so the eager-vs-beat
        byte comparison isolates the real win — N-1 amortized headers
        plus every update the last-writer-wins coalescing dropped."""
        return (
            self.registry_batch_header_bytes
            + name_count * self.registry_name_bytes
        )

    def registry_push_size(self, binding_count: int) -> int:
        """Wire size of a batched replica push (``registry.push``): one
        header, then one serialized name plus one stub per binding.
        Like :meth:`registry_batch_size`, priced per constituent — a
        batch of N bindings carries exactly N (name, stub) bodies — so
        the eager-vs-beat comparison measures header amortization and
        coalescing, not a change of byte model."""
        return self.registry_batch_header_bytes + binding_count * (
            self.registry_name_bytes + self.reference_bytes
        )


#: Which :class:`WireSizeModel` attribute prices each registered kind.
#: The mapping is deliberately explicit rather than name-derived — a
#: bind is priced as an *update* and invalidations/renewals share the
#: *batch* formula, so no naming convention could express it.  The
#: ``KIND-price`` rule in :mod:`repro.analysis` checks this manifest
#: stays total over the registry and free of stale entries; registering
#: a kind without pricing it here fails the lint, not the bandwidth
#: tables.
KIND_SIZE_SOURCES = {
    KIND_DGC_MESSAGE: "dgc_message_bytes",
    KIND_DGC_RESPONSE: "dgc_response_bytes",
    KIND_APP_REQUEST: "request_size",
    KIND_APP_REPLY: "reply_size",
    KIND_REGISTRY_LOOKUP: "registry_lookup_size",
    KIND_REGISTRY_REPLY: "registry_reply_size",
    KIND_REGISTRY_BIND: "registry_update_size",
    KIND_REGISTRY_INVALIDATE: "registry_batch_size",
    KIND_REGISTRY_RENEW: "registry_batch_size",
    KIND_REGISTRY_PUSH: "registry_push_size",
}
