"""Struct-packed cross-shard wire frames.

The sharded world (:mod:`repro.shard`) reuses the columnar pulse from
the batched delivery cores as the *literal* wire frame between shard
processes: a staged pulse entry — delivery instant, destination node,
traffic kind, item/payload columns — is exactly what a remote shard
needs to stage the delivery into its own pulse, so the egress packs
those fields and nothing else.

Frames are pickle-free: every value crossing the boundary is encoded by
a small tagged ``struct`` codec that knows the closed set of fabric
message types (:mod:`repro.runtime.request` dataclasses,
:class:`repro.core.wire.DgcMessage`/:class:`~repro.core.wire.DgcResponse`,
:class:`repro.runtime.proxy.RemoteRef`,
:class:`repro.core.clock.ActivityClock`) plus the plain containers
their fields are built from.  Two properties the shard protocol relies
on:

* **round-trip is bit-identical** — ``unpack(pack(entries))`` yields
  entries whose every field compares equal, and whose *kind* is the
  canonical interned constant from :mod:`repro.net.kinds` (the columnar
  fire loop dispatches on kind identity, so returning an equal-but-
  distinct string would silently fall off the fast path);
* **frames are self-delimiting and validated** — a truncated or
  corrupted buffer raises :class:`WireFormatError` instead of returning
  garbage.

Naming note (ROADMAP): the DGC *protocol* message types stay in
:mod:`repro.core.wire` — they are protocol state, not transport.  This
module owns only the transport encoding that moves staged pulse entries
between shard processes.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.clock import ActivityClock
from repro.core.wire import DgcMessage, DgcResponse
from repro.errors import NetworkError
from repro.net import kinds as _kinds
from repro.runtime.proxy import RemoteRef
from repro.runtime.request import (
    RegistryAck,
    RegistryBind,
    RegistryInvalidate,
    RegistryPush,
    RegistryLookup,
    RegistryRenew,
    RegistryRenewAck,
    RegistryReply,
    Reply,
    ReplyAddress,
    Request,
)


class WireFormatError(NetworkError):
    """A wire frame failed to encode or decode."""


#: Frame magic: rejects frames from a foreign protocol (or a desynced
#: stream) before any lengths are trusted.
FRAME_MAGIC = 0x5D57

_HEADER = struct.Struct("!HHIId")  # magic, src_shard, seq, count, min_delivery
_ENTRY_HEAD = struct.Struct("!dHB")  # delivery, dest node index, kind index
_F64 = struct.Struct("!d")
_I64 = struct.Struct("!q")
_U32 = struct.Struct("!I")
_U8 = struct.Struct("!B")

# Tagged-value encoding: one tag byte, then a fixed field layout per
# tag.  Compound fabric types encode their fields recursively with the
# same codec, so e.g. a Request's refs tuple of RemoteRefs needs no
# special casing.
_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_BIGINT = 0x04
_T_FLOAT = 0x05
_T_STR = 0x06
_T_BYTES = 0x07
_T_TUPLE = 0x08
_T_LIST = 0x09
_T_DICT = 0x0A
_T_CLOCK = 0x10
_T_REMOTE_REF = 0x11
_T_REPLY_ADDRESS = 0x12
_T_REQUEST = 0x13
_T_REPLY = 0x14
_T_DGC_MESSAGE = 0x15
_T_DGC_RESPONSE = 0x16
_T_REG_LOOKUP = 0x17
_T_REG_REPLY = 0x18
_T_REG_BIND = 0x19
_T_REG_ACK = 0x1A
_T_REG_RENEW = 0x1B
_T_REG_RENEW_ACK = 0x1C
_T_REG_INVALIDATE = 0x1D
_T_REG_PUSH = 0x1E

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def kind_table() -> Tuple[str, ...]:
    """The shared kind-index table: every registered kind in canonical
    order, followed by the site-pair aggregate markers.  Both sides of a
    pipe derive the same table because workers fork from the coordinator
    after all ``register_kind`` calls — the table is re-derived per call
    (the registry rebinds its tuples on registration), memoized on the
    identity of the registry's current ``ALL_KINDS`` tuple."""
    global _KIND_CACHE
    base = _kinds.ALL_KINDS
    cached = _KIND_CACHE
    if cached is not None and cached[0] is base:
        return cached[1]
    table = list(base)
    for kind in base:
        aggregate = _kinds.AGGREGATE_KINDS.get(kind)
        if aggregate is not None:
            table.append(aggregate)
    result = tuple(table)
    _KIND_CACHE = (base, result)
    return result


_KIND_CACHE: Optional[Tuple[Tuple[str, ...], Tuple[str, ...]]] = None


def kind_index() -> Dict[str, int]:
    """Kind -> table index, memoized alongside :func:`kind_table`."""
    global _KIND_INDEX_CACHE
    table = kind_table()
    cached = _KIND_INDEX_CACHE
    if cached is not None and cached[0] is table:
        return cached[1]
    index = {kind: position for position, kind in enumerate(table)}
    _KIND_INDEX_CACHE = (table, index)
    return index


_KIND_INDEX_CACHE: Optional[Tuple[Tuple[str, ...], Dict[str, int]]] = None


# ----------------------------------------------------------------------
# Value encoding
# ----------------------------------------------------------------------


def _encode_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    out += _U32.pack(len(raw))
    out += raw


def _encode_value(out: bytearray, value) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif type(value) is str:
        out.append(_T_STR)
        _encode_str(out, value)
    elif type(value) is int:
        if _INT64_MIN <= value <= _INT64_MAX:
            out.append(_T_INT)
            out += _I64.pack(value)
        else:
            raw = value.to_bytes(
                (value.bit_length() + 8) // 8, "big", signed=True
            )
            out.append(_T_BIGINT)
            out += _U32.pack(len(raw))
            out += raw
    elif type(value) is float:
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif type(value) is bytes:
        out.append(_T_BYTES)
        out += _U32.pack(len(value))
        out += value
    elif type(value) is tuple:
        out.append(_T_TUPLE)
        out += _U32.pack(len(value))
        for element in value:
            _encode_value(out, element)
    elif type(value) is list:
        out.append(_T_LIST)
        out += _U32.pack(len(value))
        for element in value:
            _encode_value(out, element)
    elif type(value) is dict:
        out.append(_T_DICT)
        out += _U32.pack(len(value))
        for key, entry in value.items():
            _encode_value(out, key)
            _encode_value(out, entry)
    elif type(value) is ActivityClock:
        out.append(_T_CLOCK)
        out += _I64.pack(value.value)
        _encode_str(out, value.owner)
    elif type(value) is RemoteRef:
        out.append(_T_REMOTE_REF)
        _encode_str(out, value.activity_id)
        _encode_str(out, value.node)
    elif type(value) is ReplyAddress:
        out.append(_T_REPLY_ADDRESS)
        _encode_str(out, value.node)
        _encode_str(out, value.activity)
        out += _I64.pack(value.future_id)
    elif type(value) is Request:
        out.append(_T_REQUEST)
        _encode_str(out, value.method)
        _encode_str(out, value.sender)
        _encode_str(out, value.target)
        out += _I64.pack(value.payload_bytes)
        out += _I64.pack(value.request_id)
        _encode_value(out, tuple(value.refs))
        _encode_value(out, value.data)
        _encode_value(out, value.reply_to)
    elif type(value) is Reply:
        out.append(_T_REPLY)
        out += _I64.pack(value.future_id)
        _encode_str(out, value.target_activity)
        out += _I64.pack(value.payload_bytes)
        _encode_value(out, tuple(value.refs))
        _encode_value(out, value.data)
    elif type(value) is DgcMessage:
        out.append(_T_DGC_MESSAGE)
        _encode_str(out, value.sender)
        out += _I64.pack(value.clock.value)
        _encode_str(out, value.clock.owner)
        out.append(1 if value.consensus else 0)
        _encode_str(out, value.sender_ref.activity_id)
        _encode_str(out, value.sender_ref.node)
        out += _F64.pack(value.sender_ttb)
    elif type(value) is DgcResponse:
        out.append(_T_DGC_RESPONSE)
        _encode_str(out, value.responder)
        out += _I64.pack(value.clock.value)
        _encode_str(out, value.clock.owner)
        out.append(1 if value.has_parent else 0)
        out.append(1 if value.consensus_reached else 0)
        _encode_value(out, value.depth)
    elif type(value) is RegistryLookup:
        out.append(_T_REG_LOOKUP)
        _encode_str(out, value.name)
        _encode_value(out, value.reply_to)
    elif type(value) is RegistryReply:
        out.append(_T_REG_REPLY)
        out += _I64.pack(value.future_id)
        _encode_str(out, value.target_activity)
        _encode_str(out, value.name)
        _encode_value(out, value.ref)
        out += _F64.pack(value.lease_s)
    elif type(value) is RegistryBind:
        out.append(_T_REG_BIND)
        _encode_str(out, value.name)
        _encode_value(out, value.ref)
        _encode_value(out, value.reply_to)
    elif type(value) is RegistryAck:
        out.append(_T_REG_ACK)
        out += _I64.pack(value.future_id)
        _encode_str(out, value.target_activity)
        _encode_str(out, value.name)
        out.append(1 if value.ok else 0)
        _encode_str(out, value.error)
    elif type(value) is RegistryRenew:
        out.append(_T_REG_RENEW)
        _encode_str(out, value.node)
        _encode_value(out, value.names)
    elif type(value) is RegistryRenewAck:
        out.append(_T_REG_RENEW_ACK)
        _encode_value(out, value.names)
        out += _F64.pack(value.lease_s)
    elif type(value) is RegistryInvalidate:
        out.append(_T_REG_INVALIDATE)
        _encode_value(out, value.names)
    elif type(value) is RegistryPush:
        out.append(_T_REG_PUSH)
        _encode_value(out, value.bindings)
    else:
        raise WireFormatError(
            f"cannot encode {type(value).__name__!r} on the shard wire"
        )


# ----------------------------------------------------------------------
# Value decoding
# ----------------------------------------------------------------------


class _Reader:
    """Bounds-checked cursor over one frame buffer."""

    __slots__ = ("buf", "pos", "end")

    def __init__(self, buf, pos: int, end: int) -> None:
        self.buf = buf
        self.pos = pos
        self.end = end

    def take(self, count: int):
        pos = self.pos
        stop = pos + count
        if stop > self.end:
            raise WireFormatError(
                f"truncated frame: wanted {count} bytes at offset {pos}, "
                f"{self.end - pos} available"
            )
        self.pos = stop
        return self.buf[pos:stop]

    def u8(self) -> int:
        return _U8.unpack(self.take(1))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def i64(self) -> int:
        return _I64.unpack(self.take(8))[0]

    def f64(self) -> float:
        return _F64.unpack(self.take(8))[0]

    def text(self) -> str:
        length = self.u32()
        try:
            return bytes(self.take(length)).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"corrupt string field: {exc}") from None


def _decode_value(reader: _Reader):
    tag = reader.u8()
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return reader.i64()
    if tag == _T_BIGINT:
        raw = bytes(reader.take(reader.u32()))
        return int.from_bytes(raw, "big", signed=True)
    if tag == _T_FLOAT:
        return reader.f64()
    if tag == _T_STR:
        return reader.text()
    if tag == _T_BYTES:
        return bytes(reader.take(reader.u32()))
    if tag == _T_TUPLE:
        count = reader.u32()
        return tuple(_decode_value(reader) for _ in range(count))
    if tag == _T_LIST:
        count = reader.u32()
        return [_decode_value(reader) for _ in range(count)]
    if tag == _T_DICT:
        count = reader.u32()
        return {
            _decode_value(reader): _decode_value(reader)
            for _ in range(count)
        }
    if tag == _T_CLOCK:
        return ActivityClock(reader.i64(), reader.text())
    if tag == _T_REMOTE_REF:
        return RemoteRef(reader.text(), reader.text())
    if tag == _T_REPLY_ADDRESS:
        return ReplyAddress(reader.text(), reader.text(), reader.i64())
    if tag == _T_REQUEST:
        method = reader.text()
        sender = reader.text()
        target = reader.text()
        payload_bytes = reader.i64()
        request_id = reader.i64()
        refs = _decode_value(reader)
        data = _decode_value(reader)
        reply_to = _decode_value(reader)
        return Request(
            method,
            sender,
            target,
            payload_bytes=payload_bytes,
            refs=refs,
            data=data,
            reply_to=reply_to,
            request_id=request_id,
        )
    if tag == _T_REPLY:
        future_id = reader.i64()
        target_activity = reader.text()
        payload_bytes = reader.i64()
        refs = _decode_value(reader)
        data = _decode_value(reader)
        return Reply(
            future_id,
            target_activity,
            payload_bytes=payload_bytes,
            refs=refs,
            data=data,
        )
    if tag == _T_DGC_MESSAGE:
        sender = reader.text()
        clock = ActivityClock(reader.i64(), reader.text())
        consensus = reader.u8() != 0
        sender_ref = RemoteRef(reader.text(), reader.text())
        sender_ttb = reader.f64()
        return DgcMessage(sender, clock, consensus, sender_ref, sender_ttb)
    if tag == _T_DGC_RESPONSE:
        responder = reader.text()
        clock = ActivityClock(reader.i64(), reader.text())
        has_parent = reader.u8() != 0
        consensus_reached = reader.u8() != 0
        depth = _decode_value(reader)
        return DgcResponse(
            responder, clock, has_parent, consensus_reached, depth
        )
    if tag == _T_REG_LOOKUP:
        return RegistryLookup(reader.text(), _decode_value(reader))
    if tag == _T_REG_REPLY:
        future_id = reader.i64()
        target_activity = reader.text()
        name = reader.text()
        ref = _decode_value(reader)
        lease_s = reader.f64()
        return RegistryReply(future_id, target_activity, name, ref, lease_s)
    if tag == _T_REG_BIND:
        name = reader.text()
        ref = _decode_value(reader)
        reply_to = _decode_value(reader)
        return RegistryBind(name, ref, reply_to)
    if tag == _T_REG_ACK:
        future_id = reader.i64()
        target_activity = reader.text()
        name = reader.text()
        ok = reader.u8() != 0
        error = reader.text()
        return RegistryAck(future_id, target_activity, name, ok, error)
    if tag == _T_REG_RENEW:
        return RegistryRenew(reader.text(), _decode_value(reader))
    if tag == _T_REG_RENEW_ACK:
        return RegistryRenewAck(_decode_value(reader), reader.f64())
    if tag == _T_REG_INVALIDATE:
        return RegistryInvalidate(_decode_value(reader))
    if tag == _T_REG_PUSH:
        return RegistryPush(_decode_value(reader))
    raise WireFormatError(f"unknown value tag 0x{tag:02X}")


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------

#: One decoded cross-shard frame: the (shard, seq) stamp that orders it
#: in the merged log, and the staged entries it carries.
class Frame:
    __slots__ = ("src_shard", "seq", "entries")

    def __init__(
        self,
        src_shard: int,
        seq: int,
        entries: List[Tuple[float, str, str, object, object]],
    ) -> None:
        self.src_shard = src_shard
        self.seq = seq
        self.entries = entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Frame(shard={self.src_shard}, seq={self.seq}, "
            f"entries={len(self.entries)})"
        )


def pack_frame(
    src_shard: int,
    seq: int,
    entries: Sequence[Tuple[float, str, str, object, object]],
    node_index: Dict[str, int],
) -> bytes:
    """Pack staged pulse entries into one wire frame.

    Each entry is ``(delivery_time, dest_node, kind, item, payload)`` —
    exactly the columns a staged pulse entry carries minus the channel
    (the receiving shard re-binds its own ingress channel).  ``kind``
    may be any registered kind or a site-pair aggregate marker, in which
    case item/payload are the flat target/message columns.
    """
    index = kind_index()
    out = bytearray(
        _HEADER.pack(
            FRAME_MAGIC,
            src_shard,
            seq,
            len(entries),
            min((entry[0] for entry in entries), default=0.0),
        )
    )
    for delivery, dest, kind, item, payload in entries:
        try:
            dest_position = node_index[dest]
        except KeyError:
            raise WireFormatError(
                f"destination node {dest!r} is not in the shared topology"
            ) from None
        try:
            kind_position = index[kind]
        except KeyError:
            raise WireFormatError(
                f"kind {kind!r} is not registered with the fabric"
            ) from None
        out += _ENTRY_HEAD.pack(delivery, dest_position, kind_position)
        _encode_value(out, item)
        _encode_value(out, payload)
    return bytes(out)


def unpack_frame(buf: bytes, node_names: Sequence[str]) -> Frame:
    """Decode one frame; inverse of :func:`pack_frame`.

    ``node_names`` is the shared topology's node tuple (both sides
    derive it from the same :class:`~repro.net.topology.Topology`).
    Kinds come back as the canonical interned constants, so identity
    dispatch in the columnar fire loop works on injected entries.
    """
    if len(buf) < _HEADER.size:
        raise WireFormatError(
            f"truncated frame: {len(buf)} bytes, header needs {_HEADER.size}"
        )
    magic, src_shard, seq, count, _min_delivery = _HEADER.unpack_from(buf, 0)
    if magic != FRAME_MAGIC:
        raise WireFormatError(f"bad frame magic 0x{magic:04X}")
    table = kind_table()
    reader = _Reader(memoryview(buf), _HEADER.size, len(buf))
    entries: List[Tuple[float, str, str, object, object]] = []
    for _ in range(count):
        delivery, dest_position, kind_position = _ENTRY_HEAD.unpack(
            reader.take(_ENTRY_HEAD.size)
        )
        if dest_position >= len(node_names):
            raise WireFormatError(
                f"destination index {dest_position} out of range "
                f"({len(node_names)} nodes)"
            )
        if kind_position >= len(table):
            raise WireFormatError(
                f"kind index {kind_position} out of range "
                f"({len(table)} kinds)"
            )
        item = _decode_value(reader)
        payload = _decode_value(reader)
        entries.append(
            (delivery, node_names[dest_position], table[kind_position],
             item, payload)
        )
    if reader.pos != reader.end:
        raise WireFormatError(
            f"frame has {reader.end - reader.pos} trailing bytes"
        )
    return Frame(src_shard, seq, entries)
