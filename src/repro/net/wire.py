"""Struct-packed cross-shard wire frames.

The sharded world (:mod:`repro.shard`) reuses the columnar pulse from
the batched delivery cores as the *literal* wire frame between shard
processes: a staged pulse entry — delivery instant, destination node,
traffic kind, item/payload columns — is exactly what a remote shard
needs to stage the delivery into its own pulse, so the egress packs
those fields and nothing else.

Frames are pickle-free: every value crossing the boundary is encoded by
a small tagged ``struct`` codec that knows the closed set of fabric
message types (:mod:`repro.runtime.request` dataclasses,
:class:`repro.core.wire.DgcMessage`/:class:`~repro.core.wire.DgcResponse`,
:class:`repro.runtime.proxy.RemoteRef`,
:class:`repro.core.clock.ActivityClock`) plus the plain containers
their fields are built from.  Two properties the shard protocol relies
on:

* **round-trip is bit-identical** — ``unpack(pack(entries))`` yields
  entries whose every field compares equal, and whose *kind* is the
  canonical interned constant from :mod:`repro.net.kinds` (the columnar
  fire loop dispatches on kind identity, so returning an equal-but-
  distinct string would silently fall off the fast path);
* **frames are self-delimiting and validated** — a truncated or
  corrupted buffer raises :class:`WireFormatError` instead of returning
  garbage.

Two frame formats share the header struct and are told apart by magic:

**v1** (magic ``0x5D57``) is the original flat encoding — every entry
pays a fixed 11-byte head (f64 delivery, u16 dest, u8 kind) and every
value is encoded in full at every occurrence.

**v2** (magic ``0x5D58``, the default) is the compact encoding.  Layout
after the shared header:

* entries are grouped into *runs* of adjacent same-kind entries:
  ``varint run_length, varint kind_index`` then the run's entries —
  per-entry kind bytes collapse into one column header per run;
* each entry is ``delivery value, varint dest_index, item value,
  payload value``;
* values use the v1 tag set plus ``_T_BACKREF``: strings, floats and
  the frozen fabric composites (``ActivityClock``, ``RemoteRef``,
  ``ReplyAddress``, ``DgcMessage``, ``DgcResponse``) are *interned* in
  a per-frame table in encode order, so every repeat — a beat's one
  ``DgcMessage`` fanned out across dozens of targets, an activity id
  recurring through a frame, a constant ``sender_ttb`` — costs a two-
  or three-byte backref instead of a re-encoding.  Backrefs also
  restore *sharing* on decode: the fan-out targets get the same
  message object, exactly as in-process delivery would;
* integers ride zigzag varints (``_T_BIGINT`` keeps the >64-bit
  escape); delivery instants are ordinary float values, which the
  intern table collapses because staged deliveries are quantized to
  beat-bucket + channel-latency instants — the delta coding is against
  the table, not the previous entry, so bit-identity is structural;
* decode is zero-copy: one ``memoryview`` over the frame,
  ``struct.unpack_from`` for fixed fields and direct ``str(view,
  "utf-8")`` for text — no intermediate ``bytes`` slices.

Both formats stay decodable (:func:`unpack_frame` dispatches on magic)
and round-trip bit-identically on the same property suite;
:func:`pack_frame` takes ``version=`` for the harness knob.

**Channel persistence.**  The v2 intern table is per-frame by default,
which makes every frame self-contained — but on a shard channel the
same activity ids, clocks and messages recur frame after frame, so the
steady state re-encodes the same strings forever.  A
:class:`ChannelEncoder` / :class:`ChannelDecoder` pair carries the
table *across* frames: pass them to :func:`pack_frame` /
:func:`unpack_frame` and a value interned in frame ``n`` is a backref
in frame ``n+k``.  This is sound exactly because the shard fabric
already guarantees per-channel FIFO: frames carry a ``(src_shard,
seq)`` stamp, the coordinator routes them in stamp order and the
worker decodes each channel's frames in seq order — the decode table
replays the encoder's registrations move for move.  Two rules follow:

* a channel pair is **one direction of one (src, dst) shard pair** —
  never share an encoder between destinations or a decoder between
  sources, and never skip or reorder a frame;
* a :class:`WireFormatError` mid-frame leaves the channel state
  desynced — the channel must be discarded (the worker treats any
  decode error as fatal, so this is moot in the fabric).

The encoder pins every registered value (a strong reference), so the
``id()``-keyed identity memo can never alias a dead object's reused
address across frames.  Stateless calls are unchanged and remain the
default; v1 has no channel state (passing one raises).

Naming note (ROADMAP): the DGC *protocol* message types stay in
:mod:`repro.core.wire` — they are protocol state, not transport.  This
module owns only the transport encoding that moves staged pulse entries
between shard processes.
"""
# repro: hot-path — every class slotted, no closure allocation in loops (HOT rules)

from __future__ import annotations

import math
import struct
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.clock import ActivityClock
from repro.core.wire import DgcMessage, DgcResponse
from repro.errors import NetworkError
from repro.net import kinds as _kinds
from repro.net.kinds import (
    KIND_APP_REPLY,
    KIND_APP_REQUEST,
    KIND_DGC_MESSAGE,
    KIND_DGC_RESPONSE,
    KIND_REGISTRY_BIND,
    KIND_REGISTRY_INVALIDATE,
    KIND_REGISTRY_LOOKUP,
    KIND_REGISTRY_PUSH,
    KIND_REGISTRY_RENEW,
    KIND_REGISTRY_REPLY,
)
from repro.runtime.proxy import RemoteRef
from repro.runtime.request import (
    RegistryAck,
    RegistryBind,
    RegistryInvalidate,
    RegistryPush,
    RegistryLookup,
    RegistryRenew,
    RegistryRenewAck,
    RegistryReply,
    Reply,
    ReplyAddress,
    Request,
)


class WireFormatError(NetworkError):
    """A wire frame failed to encode or decode."""


#: Frame magic: rejects frames from a foreign protocol (or a desynced
#: stream) before any lengths are trusted.  v1 and v2 share the header
#: struct; the magic doubles as the format version.
FRAME_MAGIC = 0x5D57
FRAME_MAGIC_V2 = 0x5D58

#: The format :func:`pack_frame` emits when no ``version`` is given.
DEFAULT_WIRE_VERSION = 2

_HEADER = struct.Struct("!HHIId")  # magic, src_shard, seq, count, min_delivery
_ENTRY_HEAD = struct.Struct("!dHB")  # delivery, dest node index, kind index
_F64 = struct.Struct("!d")
_I64 = struct.Struct("!q")
_U32 = struct.Struct("!I")
_U8 = struct.Struct("!B")

# Tagged-value encoding: one tag byte, then a fixed field layout per
# tag.  Compound fabric types encode their fields recursively with the
# same codec, so e.g. a Request's refs tuple of RemoteRefs needs no
# special casing.
_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_BIGINT = 0x04
_T_FLOAT = 0x05
_T_STR = 0x06
_T_BYTES = 0x07
_T_TUPLE = 0x08
_T_LIST = 0x09
_T_DICT = 0x0A
#: v2 only: a varint index into the frame's intern table.
_T_BACKREF = 0x0B
_T_CLOCK = 0x10
_T_REMOTE_REF = 0x11
_T_REPLY_ADDRESS = 0x12
_T_REQUEST = 0x13
_T_REPLY = 0x14
_T_DGC_MESSAGE = 0x15
_T_DGC_RESPONSE = 0x16
_T_REG_LOOKUP = 0x17
_T_REG_REPLY = 0x18
_T_REG_BIND = 0x19
_T_REG_ACK = 0x1A
_T_REG_RENEW = 0x1B
_T_REG_RENEW_ACK = 0x1C
_T_REG_INVALIDATE = 0x1D
_T_REG_PUSH = 0x1E

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def kind_table() -> Tuple[str, ...]:
    """The shared kind-index table: every registered kind in canonical
    order, followed by the site-pair aggregate markers.  Both sides of a
    pipe derive the same table because workers fork from the coordinator
    after all ``register_kind`` calls — the table is re-derived per call
    (the registry rebinds its tuples on registration), memoized on the
    identity of the registry's current ``ALL_KINDS`` tuple."""
    global _KIND_CACHE
    base = _kinds.ALL_KINDS
    cached = _KIND_CACHE
    if cached is not None and cached[0] is base:
        return cached[1]
    table = list(base)
    for kind in base:
        aggregate = _kinds.AGGREGATE_KINDS.get(kind)
        if aggregate is not None:
            table.append(aggregate)
    result = tuple(table)
    _KIND_CACHE = (base, result)
    return result


_KIND_CACHE: Optional[Tuple[Tuple[str, ...], Tuple[str, ...]]] = None


def kind_index() -> Dict[str, int]:
    """Kind -> table index, memoized alongside :func:`kind_table`."""
    global _KIND_INDEX_CACHE
    table = kind_table()
    cached = _KIND_INDEX_CACHE
    if cached is not None and cached[0] is table:
        return cached[1]
    index = {kind: position for position, kind in enumerate(table)}
    _KIND_INDEX_CACHE = (table, index)
    return index


_KIND_INDEX_CACHE: Optional[Tuple[Tuple[str, ...], Dict[str, int]]] = None


#: Which payload classes each registered kind puts on the cross-shard
#: wire — ``registry.reply`` and ``registry.renew`` each carry two
#: (the reply doubles as the bind/unbind ack; the renew kind carries
#: both the batch and its ack).  The ``KIND-codec`` rule in
#: :mod:`repro.analysis` checks the manifest stays total over the
#: registry and that every class named here has matching branches in
#: all four codec functions, so adding a kind without teaching both
#: wire versions to carry it fails the lint instead of raising
#: :class:`WireFormatError` mid-run.
KIND_PAYLOAD_TYPES = {
    KIND_DGC_MESSAGE: (DgcMessage,),
    KIND_DGC_RESPONSE: (DgcResponse,),
    KIND_APP_REQUEST: (Request,),
    KIND_APP_REPLY: (Reply,),
    KIND_REGISTRY_LOOKUP: (RegistryLookup,),
    KIND_REGISTRY_REPLY: (RegistryReply, RegistryAck),
    KIND_REGISTRY_BIND: (RegistryBind,),
    KIND_REGISTRY_INVALIDATE: (RegistryInvalidate,),
    KIND_REGISTRY_RENEW: (RegistryRenew, RegistryRenewAck),
    KIND_REGISTRY_PUSH: (RegistryPush,),
}


# ----------------------------------------------------------------------
# Value encoding
# ----------------------------------------------------------------------


def _encode_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    out += _U32.pack(len(raw))
    out += raw


def _encode_value(out: bytearray, value) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif type(value) is str:
        out.append(_T_STR)
        _encode_str(out, value)
    elif type(value) is int:
        if _INT64_MIN <= value <= _INT64_MAX:
            out.append(_T_INT)
            out += _I64.pack(value)
        else:
            raw = value.to_bytes(
                (value.bit_length() + 8) // 8, "big", signed=True
            )
            out.append(_T_BIGINT)
            out += _U32.pack(len(raw))
            out += raw
    elif type(value) is float:
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif type(value) is bytes:
        out.append(_T_BYTES)
        out += _U32.pack(len(value))
        out += value
    elif type(value) is tuple:
        out.append(_T_TUPLE)
        out += _U32.pack(len(value))
        for element in value:
            _encode_value(out, element)
    elif type(value) is list:
        out.append(_T_LIST)
        out += _U32.pack(len(value))
        for element in value:
            _encode_value(out, element)
    elif type(value) is dict:
        out.append(_T_DICT)
        out += _U32.pack(len(value))
        for key, entry in value.items():
            _encode_value(out, key)
            _encode_value(out, entry)
    elif type(value) is ActivityClock:
        out.append(_T_CLOCK)
        out += _I64.pack(value.value)
        _encode_str(out, value.owner)
    elif type(value) is RemoteRef:
        out.append(_T_REMOTE_REF)
        _encode_str(out, value.activity_id)
        _encode_str(out, value.node)
    elif type(value) is ReplyAddress:
        out.append(_T_REPLY_ADDRESS)
        _encode_str(out, value.node)
        _encode_str(out, value.activity)
        out += _I64.pack(value.future_id)
    elif type(value) is Request:
        out.append(_T_REQUEST)
        _encode_str(out, value.method)
        _encode_str(out, value.sender)
        _encode_str(out, value.target)
        out += _I64.pack(value.payload_bytes)
        out += _I64.pack(value.request_id)
        _encode_value(out, tuple(value.refs))
        _encode_value(out, value.data)
        _encode_value(out, value.reply_to)
    elif type(value) is Reply:
        out.append(_T_REPLY)
        out += _I64.pack(value.future_id)
        _encode_str(out, value.target_activity)
        out += _I64.pack(value.payload_bytes)
        _encode_value(out, tuple(value.refs))
        _encode_value(out, value.data)
    elif type(value) is DgcMessage:
        out.append(_T_DGC_MESSAGE)
        _encode_str(out, value.sender)
        out += _I64.pack(value.clock.value)
        _encode_str(out, value.clock.owner)
        out.append(1 if value.consensus else 0)
        _encode_str(out, value.sender_ref.activity_id)
        _encode_str(out, value.sender_ref.node)
        out += _F64.pack(value.sender_ttb)
    elif type(value) is DgcResponse:
        out.append(_T_DGC_RESPONSE)
        _encode_str(out, value.responder)
        out += _I64.pack(value.clock.value)
        _encode_str(out, value.clock.owner)
        out.append(1 if value.has_parent else 0)
        out.append(1 if value.consensus_reached else 0)
        _encode_value(out, value.depth)
    elif type(value) is RegistryLookup:
        out.append(_T_REG_LOOKUP)
        _encode_str(out, value.name)
        _encode_value(out, value.reply_to)
    elif type(value) is RegistryReply:
        out.append(_T_REG_REPLY)
        out += _I64.pack(value.future_id)
        _encode_str(out, value.target_activity)
        _encode_str(out, value.name)
        _encode_value(out, value.ref)
        out += _F64.pack(value.lease_s)
    elif type(value) is RegistryBind:
        out.append(_T_REG_BIND)
        _encode_str(out, value.name)
        _encode_value(out, value.ref)
        _encode_value(out, value.reply_to)
    elif type(value) is RegistryAck:
        out.append(_T_REG_ACK)
        out += _I64.pack(value.future_id)
        _encode_str(out, value.target_activity)
        _encode_str(out, value.name)
        out.append(1 if value.ok else 0)
        _encode_str(out, value.error)
    elif type(value) is RegistryRenew:
        out.append(_T_REG_RENEW)
        _encode_str(out, value.node)
        _encode_value(out, value.names)
    elif type(value) is RegistryRenewAck:
        out.append(_T_REG_RENEW_ACK)
        _encode_value(out, value.names)
        out += _F64.pack(value.lease_s)
    elif type(value) is RegistryInvalidate:
        out.append(_T_REG_INVALIDATE)
        _encode_value(out, value.names)
    elif type(value) is RegistryPush:
        out.append(_T_REG_PUSH)
        _encode_value(out, value.bindings)
    else:
        raise WireFormatError(
            f"cannot encode {type(value).__name__!r} on the shard wire"
        )


# ----------------------------------------------------------------------
# Value decoding
# ----------------------------------------------------------------------


class _Reader:
    """Bounds-checked cursor over one frame buffer."""

    __slots__ = ("buf", "pos", "end")

    def __init__(self, buf, pos: int, end: int) -> None:
        self.buf = buf
        self.pos = pos
        self.end = end

    def take(self, count: int):
        pos = self.pos
        stop = pos + count
        if stop > self.end:
            raise WireFormatError(
                f"truncated frame: wanted {count} bytes at offset {pos}, "
                f"{self.end - pos} available"
            )
        self.pos = stop
        return self.buf[pos:stop]

    def u8(self) -> int:
        return _U8.unpack(self.take(1))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def i64(self) -> int:
        return _I64.unpack(self.take(8))[0]

    def f64(self) -> float:
        return _F64.unpack(self.take(8))[0]

    def text(self) -> str:
        length = self.u32()
        try:
            return bytes(self.take(length)).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"corrupt string field: {exc}") from None


def _decode_value(reader: _Reader):
    tag = reader.u8()
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return reader.i64()
    if tag == _T_BIGINT:
        raw = bytes(reader.take(reader.u32()))
        return int.from_bytes(raw, "big", signed=True)
    if tag == _T_FLOAT:
        return reader.f64()
    if tag == _T_STR:
        return reader.text()
    if tag == _T_BYTES:
        return bytes(reader.take(reader.u32()))
    if tag == _T_TUPLE:
        count = reader.u32()
        return tuple(_decode_value(reader) for _ in range(count))
    if tag == _T_LIST:
        count = reader.u32()
        return [_decode_value(reader) for _ in range(count)]
    if tag == _T_DICT:
        count = reader.u32()
        return {
            _decode_value(reader): _decode_value(reader)
            for _ in range(count)
        }
    if tag == _T_CLOCK:
        return ActivityClock(reader.i64(), reader.text())
    if tag == _T_REMOTE_REF:
        return RemoteRef(reader.text(), reader.text())
    if tag == _T_REPLY_ADDRESS:
        return ReplyAddress(reader.text(), reader.text(), reader.i64())
    if tag == _T_REQUEST:
        method = reader.text()
        sender = reader.text()
        target = reader.text()
        payload_bytes = reader.i64()
        request_id = reader.i64()
        refs = _decode_value(reader)
        data = _decode_value(reader)
        reply_to = _decode_value(reader)
        return Request(
            method,
            sender,
            target,
            payload_bytes=payload_bytes,
            refs=refs,
            data=data,
            reply_to=reply_to,
            request_id=request_id,
        )
    if tag == _T_REPLY:
        future_id = reader.i64()
        target_activity = reader.text()
        payload_bytes = reader.i64()
        refs = _decode_value(reader)
        data = _decode_value(reader)
        return Reply(
            future_id,
            target_activity,
            payload_bytes=payload_bytes,
            refs=refs,
            data=data,
        )
    if tag == _T_DGC_MESSAGE:
        sender = reader.text()
        clock = ActivityClock(reader.i64(), reader.text())
        consensus = reader.u8() != 0
        sender_ref = RemoteRef(reader.text(), reader.text())
        sender_ttb = reader.f64()
        return DgcMessage(sender, clock, consensus, sender_ref, sender_ttb)
    if tag == _T_DGC_RESPONSE:
        responder = reader.text()
        clock = ActivityClock(reader.i64(), reader.text())
        has_parent = reader.u8() != 0
        consensus_reached = reader.u8() != 0
        depth = _decode_value(reader)
        return DgcResponse(
            responder, clock, has_parent, consensus_reached, depth
        )
    if tag == _T_REG_LOOKUP:
        return RegistryLookup(reader.text(), _decode_value(reader))
    if tag == _T_REG_REPLY:
        future_id = reader.i64()
        target_activity = reader.text()
        name = reader.text()
        ref = _decode_value(reader)
        lease_s = reader.f64()
        return RegistryReply(future_id, target_activity, name, ref, lease_s)
    if tag == _T_REG_BIND:
        name = reader.text()
        ref = _decode_value(reader)
        reply_to = _decode_value(reader)
        return RegistryBind(name, ref, reply_to)
    if tag == _T_REG_ACK:
        future_id = reader.i64()
        target_activity = reader.text()
        name = reader.text()
        ok = reader.u8() != 0
        error = reader.text()
        return RegistryAck(future_id, target_activity, name, ok, error)
    if tag == _T_REG_RENEW:
        return RegistryRenew(reader.text(), _decode_value(reader))
    if tag == _T_REG_RENEW_ACK:
        return RegistryRenewAck(_decode_value(reader), reader.f64())
    if tag == _T_REG_INVALIDATE:
        return RegistryInvalidate(_decode_value(reader))
    if tag == _T_REG_PUSH:
        return RegistryPush(_decode_value(reader))
    raise WireFormatError(f"unknown value tag 0x{tag:02X}")


# ----------------------------------------------------------------------
# v2 value encoding (per-frame interning + varints)
# ----------------------------------------------------------------------

#: Sentinel dict keys for the two float zeroes — ``-0.0 == 0.0`` hashes
#: identically, but bit-identical round-trips must keep them apart.
_POS_ZERO = ("f64-zero", 1.0)
_NEG_ZERO = ("f64-zero", -1.0)


def _float_key(value: float):
    if value == 0.0:
        return _NEG_ZERO if math.copysign(1.0, value) < 0 else _POS_ZERO
    return value


class _V2Encoder:
    """One frame's encode state: output buffer plus the intern table.

    Interned values get indices in *encode order*, children before the
    composite that contains them (post-order), which is exactly the
    order the decoder appends to its table — no index negotiation on
    the wire.  The identity memo is the fast path (the fabric reuses
    message/clock/ref objects heavily); the value memo catches
    equal-but-distinct objects so e.g. two responders constructing the
    same clock value still share one table slot.
    """

    __slots__ = ("out", "id_memo", "val_memo", "count", "pins")

    def __init__(self) -> None:
        self.out = bytearray()
        self.id_memo: Dict[int, int] = {}
        self.val_memo: Dict[object, int] = {}
        self.count = 0
        # Strong refs to every registered value: the id_memo keys on
        # id(value), and a collected value's address can be reused by a
        # new object — harmless within one frame (the entries list pins
        # everything), fatal for a persistent channel (zero floats key
        # the value memo through sentinels, so nothing else pins them).
        self.pins: List[object] = []

    def varint(self, value: int) -> None:
        out = self.out
        while value >= 0x80:
            out.append((value & 0x7F) | 0x80)
            value >>= 7
        out.append(value)

    def zigzag(self, value: int) -> None:
        self.varint((value << 1) ^ (value >> 63))

    def _intern(self, value, key) -> bool:
        """Emit a backref if ``value`` is already in the table (True);
        otherwise return False — the caller encodes the value and then
        calls :meth:`_register`."""
        index = self.id_memo.get(id(value))
        if index is None:
            index = self.val_memo.get(key)
        if index is None:
            return False
        out = self.out
        out.append(_T_BACKREF)
        if index < 0x80:
            out.append(index)
        elif index < 0x4000:
            out.append((index & 0x7F) | 0x80)
            out.append(index >> 7)
        else:
            self.varint(index)
        return True

    def _register(self, value, key) -> None:
        index = self.count
        self.count = index + 1
        self.id_memo[id(value)] = index
        self.val_memo[key] = index
        self.pins.append(value)

    def value(self, value) -> None:
        # The dispatch chain is frequency-ordered for the sharded
        # fabric's traffic mix — activity-id strings, then the DGC
        # message/response payloads and their clock/ref constituents —
        # because every staged entry funnels through here and the chain
        # itself shows up in profiles.
        out = self.out
        cls = value.__class__
        if cls is str:
            # Strings skip the identity memo: equal strings hash fast
            # (CPython caches str hashes), so the value memo alone is
            # both the fast path and the dedup.
            memo = self.val_memo
            index = memo.get(value)
            if index is not None:
                out.append(_T_BACKREF)
                if index < 0x80:
                    out.append(index)
                elif index < 0x4000:
                    out.append((index & 0x7F) | 0x80)
                    out.append(index >> 7)
                else:
                    self.varint(index)
                return
            raw = value.encode("utf-8")
            out.append(_T_STR)
            self.varint(len(raw))
            out += raw
            memo[value] = self.count
            self.count += 1
        elif cls is DgcMessage:
            if self._intern(value, value):
                return
            out.append(_T_DGC_MESSAGE)
            self.value(value.sender)
            self.value(value.clock)
            out.append(1 if value.consensus else 0)
            self.value(value.sender_ref)
            self.value(value.sender_ttb)
            self._register(value, value)
        elif cls is DgcResponse:
            if self._intern(value, value):
                return
            out.append(_T_DGC_RESPONSE)
            self.value(value.responder)
            self.value(value.clock)
            out.append(1 if value.has_parent else 0)
            out.append(1 if value.consensus_reached else 0)
            self.value(value.depth)
            self._register(value, value)
        elif cls is ActivityClock:
            if self._intern(value, value):
                return
            out.append(_T_CLOCK)
            self.zigzag(value.value)
            self.value(value.owner)
            self._register(value, value)
        elif cls is RemoteRef:
            if self._intern(value, value):
                return
            out.append(_T_REMOTE_REF)
            self.value(value.activity_id)
            self.value(value.node)
            self._register(value, value)
        elif value is None:
            out.append(_T_NONE)
        elif cls is bool:
            out.append(_T_TRUE if value else _T_FALSE)
        elif cls is int:
            if _INT64_MIN <= value <= _INT64_MAX:
                out.append(_T_INT)
                self.zigzag(value)
            else:
                raw = value.to_bytes(
                    (value.bit_length() + 8) // 8, "big", signed=True
                )
                out.append(_T_BIGINT)
                self.varint(len(raw))
                out += raw
        elif cls is float:
            key = _float_key(value)
            if self._intern(value, key):
                return
            out.append(_T_FLOAT)
            out += _F64.pack(value)
            self._register(value, key)
        elif cls is bytes:
            out.append(_T_BYTES)
            self.varint(len(value))
            out += value
        elif cls is tuple:
            out.append(_T_TUPLE)
            self.varint(len(value))
            for element in value:
                self.value(element)
        elif cls is list:
            out.append(_T_LIST)
            self.varint(len(value))
            for element in value:
                self.value(element)
        elif cls is dict:
            out.append(_T_DICT)
            self.varint(len(value))
            for key, entry in value.items():
                self.value(key)
                self.value(entry)
        elif cls is ReplyAddress:
            if self._intern(value, value):
                return
            out.append(_T_REPLY_ADDRESS)
            self.value(value.node)
            self.value(value.activity)
            self.zigzag(value.future_id)
            self._register(value, value)
        elif cls is Request:
            out.append(_T_REQUEST)
            self.value(value.method)
            self.value(value.sender)
            self.value(value.target)
            self.zigzag(value.payload_bytes)
            self.zigzag(value.request_id)
            self.value(tuple(value.refs))
            self.value(value.data)
            self.value(value.reply_to)
        elif type(value) is Reply:
            out.append(_T_REPLY)
            self.zigzag(value.future_id)
            self.value(value.target_activity)
            self.zigzag(value.payload_bytes)
            self.value(tuple(value.refs))
            self.value(value.data)
        elif type(value) is RegistryLookup:
            out.append(_T_REG_LOOKUP)
            self.value(value.name)
            self.value(value.reply_to)
        elif type(value) is RegistryReply:
            out.append(_T_REG_REPLY)
            self.zigzag(value.future_id)
            self.value(value.target_activity)
            self.value(value.name)
            self.value(value.ref)
            self.value(value.lease_s)
        elif type(value) is RegistryBind:
            out.append(_T_REG_BIND)
            self.value(value.name)
            self.value(value.ref)
            self.value(value.reply_to)
        elif type(value) is RegistryAck:
            out.append(_T_REG_ACK)
            self.zigzag(value.future_id)
            self.value(value.target_activity)
            self.value(value.name)
            out.append(1 if value.ok else 0)
            self.value(value.error)
        elif type(value) is RegistryRenew:
            out.append(_T_REG_RENEW)
            self.value(value.node)
            self.value(value.names)
        elif type(value) is RegistryRenewAck:
            out.append(_T_REG_RENEW_ACK)
            self.value(value.names)
            self.value(value.lease_s)
        elif type(value) is RegistryInvalidate:
            out.append(_T_REG_INVALIDATE)
            self.value(value.names)
        elif type(value) is RegistryPush:
            out.append(_T_REG_PUSH)
            self.value(value.bindings)
        else:
            raise WireFormatError(
                f"cannot encode {type(value).__name__!r} on the shard wire"
            )


# ----------------------------------------------------------------------
# v2 value decoding
# ----------------------------------------------------------------------


class _V2Reader:
    """Bounds-checked zero-copy cursor over one v2 frame.

    Fixed fields go through ``struct.unpack_from`` on the shared
    memoryview, text through ``str(view, "utf-8")`` — nothing slices
    into intermediate ``bytes``.  ``table`` is the decode-side intern
    table; it grows in exactly the encoder's registration order.
    """

    __slots__ = ("buf", "pos", "end", "table")

    def __init__(self, buf, pos: int, end: int) -> None:
        self.buf = buf
        self.pos = pos
        self.end = end
        self.table: List[object] = []

    def _need(self, count: int) -> int:
        pos = self.pos
        stop = pos + count
        if stop > self.end:
            raise WireFormatError(
                f"truncated frame: wanted {count} bytes at offset {pos}, "
                f"{self.end - pos} available"
            )
        self.pos = stop
        return pos

    def u8(self) -> int:
        return self.buf[self._need(1)]

    def f64(self) -> float:
        return _F64.unpack_from(self.buf, self._need(8))[0]

    def varint(self) -> int:
        buf = self.buf
        pos = self.pos
        end = self.end
        if pos >= end:
            raise WireFormatError(
                f"truncated frame: varint at offset {pos} past end"
            )
        byte = buf[pos]
        if byte < 0x80:
            self.pos = pos + 1
            return byte
        result = byte & 0x7F
        shift = 7
        pos += 1
        while True:
            if pos >= end:
                raise WireFormatError(
                    f"truncated frame: varint at offset {self.pos} past end"
                )
            if shift > 63:
                raise WireFormatError(
                    f"overlong varint at offset {self.pos}"
                )
            byte = buf[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if byte < 0x80:
                self.pos = pos
                return result
            shift += 7

    def zigzag(self) -> int:
        raw = self.varint()
        return (raw >> 1) ^ -(raw & 1)

    def text(self) -> str:
        length = self.varint()
        pos = self._need(length)
        try:
            return str(self.buf[pos:pos + length], "utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"corrupt string field: {exc}") from None


def _decode_value_v2(reader: _V2Reader):
    # Tag dispatch is frequency-ordered to mirror the encoder: the
    # sharded fabric's frames are dominated by backrefs, activity-id
    # strings and the DGC payload types, so those exit the chain first.
    pos = reader.pos
    if pos >= reader.end:
        raise WireFormatError(
            f"truncated frame: wanted 1 bytes at offset {pos}, 0 available"
        )
    reader.pos = pos + 1
    tag = reader.buf[pos]
    if tag == _T_BACKREF:
        # Inlined varint: backrefs are the single hottest tag, and a
        # persistent channel's indices live mostly in the two-byte band.
        buf = reader.buf
        pos = reader.pos
        end = reader.end
        if pos < end and buf[pos] < 0x80:
            reader.pos = pos + 1
            index = buf[pos]
        elif pos + 1 < end and buf[pos + 1] < 0x80:
            reader.pos = pos + 2
            index = (buf[pos] & 0x7F) | (buf[pos + 1] << 7)
        else:
            index = reader.varint()
        table = reader.table
        if index < len(table):
            return table[index]
        raise WireFormatError(
            f"backref {index} out of range ({len(table)} interned)"
        )
    if tag == _T_STR:
        value = reader.text()
        reader.table.append(value)
        return value
    if tag == _T_DGC_MESSAGE:
        sender = _decode_value_v2(reader)
        clock = _decode_value_v2(reader)
        consensus = reader.u8() != 0
        sender_ref = _decode_value_v2(reader)
        sender_ttb = _decode_value_v2(reader)
        value = DgcMessage(sender, clock, consensus, sender_ref, sender_ttb)
        reader.table.append(value)
        return value
    if tag == _T_DGC_RESPONSE:
        responder = _decode_value_v2(reader)
        clock = _decode_value_v2(reader)
        has_parent = reader.u8() != 0
        consensus_reached = reader.u8() != 0
        depth = _decode_value_v2(reader)
        value = DgcResponse(
            responder, clock, has_parent, consensus_reached, depth
        )
        reader.table.append(value)
        return value
    if tag == _T_CLOCK:
        value = ActivityClock(reader.zigzag(), _decode_value_v2(reader))
        reader.table.append(value)
        return value
    if tag == _T_REMOTE_REF:
        value = RemoteRef(_decode_value_v2(reader), _decode_value_v2(reader))
        reader.table.append(value)
        return value
    if tag == _T_FLOAT:
        value = reader.f64()
        reader.table.append(value)
        return value
    if tag == _T_INT:
        return reader.zigzag()
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_TUPLE:
        count = reader.varint()
        return tuple(_decode_value_v2(reader) for _ in range(count))
    if tag == _T_LIST:
        count = reader.varint()
        return [_decode_value_v2(reader) for _ in range(count)]
    if tag == _T_DICT:
        count = reader.varint()
        return {
            _decode_value_v2(reader): _decode_value_v2(reader)
            for _ in range(count)
        }
    if tag == _T_BIGINT:
        length = reader.varint()
        pos = reader._need(length)
        return int.from_bytes(
            reader.buf[pos:pos + length], "big", signed=True
        )
    if tag == _T_BYTES:
        length = reader.varint()
        pos = reader._need(length)
        return bytes(reader.buf[pos:pos + length])
    if tag == _T_REPLY_ADDRESS:
        value = ReplyAddress(
            _decode_value_v2(reader), _decode_value_v2(reader),
            reader.zigzag(),
        )
        reader.table.append(value)
        return value
    if tag == _T_REQUEST:
        method = _decode_value_v2(reader)
        sender = _decode_value_v2(reader)
        target = _decode_value_v2(reader)
        payload_bytes = reader.zigzag()
        request_id = reader.zigzag()
        refs = _decode_value_v2(reader)
        data = _decode_value_v2(reader)
        reply_to = _decode_value_v2(reader)
        return Request(
            method,
            sender,
            target,
            payload_bytes=payload_bytes,
            refs=refs,
            data=data,
            reply_to=reply_to,
            request_id=request_id,
        )
    if tag == _T_REPLY:
        future_id = reader.zigzag()
        target_activity = _decode_value_v2(reader)
        payload_bytes = reader.zigzag()
        refs = _decode_value_v2(reader)
        data = _decode_value_v2(reader)
        return Reply(
            future_id,
            target_activity,
            payload_bytes=payload_bytes,
            refs=refs,
            data=data,
        )
    if tag == _T_REG_LOOKUP:
        return RegistryLookup(_decode_value_v2(reader), _decode_value_v2(reader))
    if tag == _T_REG_REPLY:
        future_id = reader.zigzag()
        target_activity = _decode_value_v2(reader)
        name = _decode_value_v2(reader)
        ref = _decode_value_v2(reader)
        lease_s = _decode_value_v2(reader)
        return RegistryReply(future_id, target_activity, name, ref, lease_s)
    if tag == _T_REG_BIND:
        name = _decode_value_v2(reader)
        ref = _decode_value_v2(reader)
        reply_to = _decode_value_v2(reader)
        return RegistryBind(name, ref, reply_to)
    if tag == _T_REG_ACK:
        future_id = reader.zigzag()
        target_activity = _decode_value_v2(reader)
        name = _decode_value_v2(reader)
        ok = reader.u8() != 0
        error = _decode_value_v2(reader)
        return RegistryAck(future_id, target_activity, name, ok, error)
    if tag == _T_REG_RENEW:
        return RegistryRenew(_decode_value_v2(reader), _decode_value_v2(reader))
    if tag == _T_REG_RENEW_ACK:
        return RegistryRenewAck(_decode_value_v2(reader), _decode_value_v2(reader))
    if tag == _T_REG_INVALIDATE:
        return RegistryInvalidate(_decode_value_v2(reader))
    if tag == _T_REG_PUSH:
        return RegistryPush(_decode_value_v2(reader))
    raise WireFormatError(f"unknown value tag 0x{tag:02X}")


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------

#: One decoded cross-shard frame: the (shard, seq) stamp that orders it
#: in the merged log, and the staged entries it carries.
class Frame:
    __slots__ = ("src_shard", "seq", "entries")

    def __init__(
        self,
        src_shard: int,
        seq: int,
        entries: List[Tuple[float, str, str, object, object]],
    ) -> None:
        self.src_shard = src_shard
        self.seq = seq
        self.entries = entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Frame(shard={self.src_shard}, seq={self.seq}, "
            f"entries={len(self.entries)})"
        )


class ChannelEncoder(_V2Encoder):
    """Persistent encode state for one ordered (src, dst) frame stream.

    Pass the same instance to every :func:`pack_frame` call on the
    channel (v2 only) and the intern table survives between frames:
    the steady state re-sends recurring ids, clocks and messages as
    backrefs instead of full encodings.  Sound only if the peer decodes
    the channel's frames in pack order with a matching
    :class:`ChannelDecoder` — the shard fabric's ``(src_shard, seq)``
    stamps guarantee exactly that.
    """

    __slots__ = ()


class ChannelDecoder:
    """Decode half of a persistent channel: the cross-frame intern
    table, grown in the paired :class:`ChannelEncoder`'s registration
    order.  Discard after any decode error — the table is desynced."""

    __slots__ = ("table",)

    def __init__(self) -> None:
        self.table: List[object] = []


def frame_stamp(buf: bytes) -> Tuple[int, int]:
    """The ``(src_shard, seq)`` stamp from a packed frame's header —
    the global merge key — without decoding the body.  Lets a worker
    order raw buffers *before* decoding, which persistent channel
    decoders require (each channel's frames must decode in seq order).
    """
    if len(buf) < _HEADER.size:
        raise WireFormatError(
            f"truncated frame: {len(buf)} bytes, header needs "
            f"{_HEADER.size}"
        )
    magic, src_shard, seq, _count, _min_delivery = _HEADER.unpack_from(buf, 0)
    if magic != FRAME_MAGIC and magic != FRAME_MAGIC_V2:
        raise WireFormatError(f"bad frame magic 0x{magic:04X}")
    return src_shard, seq


def frame_version(buf: bytes) -> int:
    """The format version of a packed frame (1 or 2), from its magic."""
    if len(buf) < 2:
        raise WireFormatError("truncated frame: no magic")
    magic = (buf[0] << 8) | buf[1]
    if magic == FRAME_MAGIC:
        return 1
    if magic == FRAME_MAGIC_V2:
        return 2
    raise WireFormatError(f"bad frame magic 0x{magic:04X}")


def pack_frame(
    src_shard: int,
    seq: int,
    entries: Sequence[Tuple[float, str, str, object, object]],
    node_index: Dict[str, int],
    version: int = DEFAULT_WIRE_VERSION,
    channel: Optional[ChannelEncoder] = None,
) -> bytes:
    """Pack staged pulse entries into one wire frame.

    Each entry is ``(delivery_time, dest_node, kind, item, payload)`` —
    exactly the columns a staged pulse entry carries minus the channel
    (the receiving shard re-binds its own ingress channel).  ``kind``
    may be any registered kind or a site-pair aggregate marker, in which
    case item/payload are the flat target/message columns.  ``version``
    selects the frame format; both decode through :func:`unpack_frame`.
    ``channel`` (v2 only) persists the intern table across the frames
    of one ordered shard channel.
    """
    if version == 2:
        return _pack_frame_v2(src_shard, seq, entries, node_index, channel)
    if version != 1:
        raise WireFormatError(f"unknown wire version {version!r}")
    if channel is not None:
        raise WireFormatError("wire v1 has no channel state")
    index = kind_index()
    out = bytearray(
        _HEADER.pack(
            FRAME_MAGIC,
            src_shard,
            seq,
            len(entries),
            min((entry[0] for entry in entries), default=0.0),
        )
    )
    for delivery, dest, kind, item, payload in entries:
        try:
            dest_position = node_index[dest]
        except KeyError:
            raise WireFormatError(
                f"destination node {dest!r} is not in the shared topology"
            ) from None
        try:
            kind_position = index[kind]
        except KeyError:
            raise WireFormatError(
                f"kind {kind!r} is not registered with the fabric"
            ) from None
        out += _ENTRY_HEAD.pack(delivery, dest_position, kind_position)
        _encode_value(out, item)
        _encode_value(out, payload)
    return bytes(out)


def _pack_frame_v2(
    src_shard: int,
    seq: int,
    entries: Sequence[Tuple[float, str, str, object, object]],
    node_index: Dict[str, int],
    channel: Optional[ChannelEncoder] = None,
) -> bytes:
    # Entries sharing (kind, delivery instant, destination node) are
    # coalesced into one run that spells those three columns out once —
    # beat-quantized DGC traffic shares delivery instants heavily, so
    # the common frame carries several items per run.  Runs appear in
    # first-occurrence order and items keep their staged order within a
    # run, so the decoded entry list is a deterministic, order-
    # normalized permutation of the input (same multiset, bit-identical
    # values); per-channel FIFO order survives because a channel's
    # equal-delivery sends land in the same run.  The float key goes
    # through its IEEE bits so -0.0/0.0 (and NaN payloads) never merge.
    pack_f64 = _F64.pack
    groups: Dict[tuple, list] = {}
    get_group = groups.get
    for entry in entries:
        delivery = entry[0]
        if type(delivery) is not float:
            # struct "d" coerced ints in v1; keep that contract.
            delivery = float(delivery)
        key = (entry[2], pack_f64(delivery), entry[1])
        bucket = get_group(key)
        if bucket is None:
            groups[key] = bucket = [delivery, entry[1], entry[2]]
        bucket.append(entry[3])
        bucket.append(entry[4])
    index = kind_index()
    if channel is None:
        encoder = _V2Encoder()
    else:
        encoder = channel
        encoder.out = bytearray()  # fresh frame body, memos persist
    varint = encoder.varint
    value = encoder.value
    for bucket in groups.values():
        delivery = bucket[0]
        dest = bucket[1]
        kind = bucket[2]
        try:
            kind_position = index[kind]
        except KeyError:
            raise WireFormatError(
                f"kind {kind!r} is not registered with the fabric"
            ) from None
        try:
            dest_position = node_index[dest]
        except KeyError:
            raise WireFormatError(
                f"destination node {dest!r} is not in the shared "
                f"topology"
            ) from None
        varint((len(bucket) - 3) >> 1)
        varint(kind_position)
        value(delivery)
        varint(dest_position)
        for field in range(3, len(bucket)):
            value(bucket[field])
    return _HEADER.pack(
        FRAME_MAGIC_V2,
        src_shard,
        seq,
        len(entries),
        min((entry[0] for entry in entries), default=0.0),
    ) + bytes(encoder.out)


def unpack_frame(
    buf: bytes,
    node_names: Sequence[str],
    channel: Optional[ChannelDecoder] = None,
) -> Frame:
    """Decode one frame; inverse of :func:`pack_frame`.

    ``node_names`` is the shared topology's node tuple (both sides
    derive it from the same :class:`~repro.net.topology.Topology`).
    Kinds come back as the canonical interned constants, so identity
    dispatch in the columnar fire loop works on injected entries.
    ``channel`` (v2 only) persists the intern table across the frames
    of one ordered shard channel; it must mirror the packing side's
    :class:`ChannelEncoder` frame for frame.
    """
    if len(buf) < _HEADER.size:
        raise WireFormatError(
            f"truncated frame: {len(buf)} bytes, header needs {_HEADER.size}"
        )
    magic, src_shard, seq, count, _min_delivery = _HEADER.unpack_from(buf, 0)
    if magic == FRAME_MAGIC_V2:
        return _unpack_frame_v2(buf, node_names, src_shard, seq, count, channel)
    if magic != FRAME_MAGIC:
        raise WireFormatError(f"bad frame magic 0x{magic:04X}")
    if channel is not None:
        raise WireFormatError("wire v1 has no channel state")
    table = kind_table()
    reader = _Reader(memoryview(buf), _HEADER.size, len(buf))
    entries: List[Tuple[float, str, str, object, object]] = []
    for _ in range(count):
        delivery, dest_position, kind_position = _ENTRY_HEAD.unpack(
            reader.take(_ENTRY_HEAD.size)
        )
        if dest_position >= len(node_names):
            raise WireFormatError(
                f"destination index {dest_position} out of range "
                f"({len(node_names)} nodes)"
            )
        if kind_position >= len(table):
            raise WireFormatError(
                f"kind index {kind_position} out of range "
                f"({len(table)} kinds)"
            )
        item = _decode_value(reader)
        payload = _decode_value(reader)
        entries.append(
            (delivery, node_names[dest_position], table[kind_position],
             item, payload)
        )
    if reader.pos != reader.end:
        raise WireFormatError(
            f"frame has {reader.end - reader.pos} trailing bytes"
        )
    return Frame(src_shard, seq, entries)


def _unpack_frame_v2(
    buf: bytes,
    node_names: Sequence[str],
    src_shard: int,
    seq: int,
    count: int,
    channel: Optional[ChannelDecoder] = None,
) -> Frame:
    table = kind_table()
    node_count = len(node_names)
    reader = _V2Reader(memoryview(buf), _HEADER.size, len(buf))
    if channel is not None:
        reader.table = channel.table
    decode = _decode_value_v2
    varint = reader.varint
    entries: List[Tuple[float, str, str, object, object]] = []
    append = entries.append
    decoded = 0
    while decoded < count:
        run_length = varint()
        if run_length == 0:
            raise WireFormatError("empty kind run")
        decoded += run_length
        if decoded > count:
            raise WireFormatError(
                f"kind run of {run_length} overflows entry count {count}"
            )
        kind_position = varint()
        if kind_position >= len(table):
            raise WireFormatError(
                f"kind index {kind_position} out of range "
                f"({len(table)} kinds)"
            )
        kind = table[kind_position]
        delivery = decode(reader)
        if type(delivery) is not float:
            raise WireFormatError(
                f"delivery instant decodes as "
                f"{type(delivery).__name__}, expected float"
            )
        dest_position = varint()
        if dest_position >= node_count:
            raise WireFormatError(
                f"destination index {dest_position} out of range "
                f"({node_count} nodes)"
            )
        dest = node_names[dest_position]
        for _ in range(run_length):
            item = decode(reader)
            append((delivery, dest, kind, item, decode(reader)))
    if reader.pos != reader.end:
        raise WireFormatError(
            f"frame has {reader.end - reader.pos} trailing bytes"
        )
    return Frame(src_shard, seq, entries)
