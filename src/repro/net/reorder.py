"""Protocol-safe delivery reordering — the relaxed equivalence tier's
contract.

The DGC's correctness argument (paper Sec. 3.2) needs exactly two
ordering properties from the transport:

* **per-stream FIFO** — messages of one kind on one ordered channel
  never overtake each other, so the activity-clock values a collector
  receives from any single referencer are non-decreasing;
* **clock monotonicity** — no delivery ever moves *earlier* than the
  exact-order transport would have delivered it, so a referencer record
  is only ever refreshed (or created) at, or after, its exact-order
  instant; records can only live longer, never expire sooner, and the
  safety bound ``TTA > 2*TTB + MaxComm`` degrades monotonically (by the
  deferral bound) instead of breaking.

Everything else — the interleaving of *different* channels, and of
different kinds on one channel — is semantically free: the protocol
folds each arriving message into per-referencer state keyed by the
sender, and cross-stream order carries no information.

This module encodes that class as one checkable predicate shared by the
relaxed staging core (:meth:`repro.net.network.Network._flush_relaxed`
accumulates per ``(channel, kind)`` stream, the same key
:func:`stream_key` canonicalizes) and the test suites
(``tests/property/test_reorder_safety.py`` shuffles recorded schedules
with :func:`safe_shuffle` and validates both directions with
:func:`find_violation`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence


def stream_key(source: Optional[str], dest: str, kind: Optional[str]) -> tuple:
    """Canonical FIFO-stream coordinate of one delivery: the ordered
    node pair plus the traffic kind.  Deliveries sharing a stream may
    never be reordered among themselves; deliveries on different
    streams may."""
    return (source, dest, kind)


def find_violation(
    original: Sequence[Any],
    reordered: Sequence[Any],
    *,
    key: Callable[[Any], Hashable],
    time: Optional[Callable[[Any], float]] = None,
    ident: Optional[Callable[[Any], Any]] = None,
) -> Optional[str]:
    """Explain why ``reordered`` is **not** a protocol-safe reordering
    of ``original``, or return ``None`` when it is.

    ``key`` maps a delivery record to its FIFO stream (see
    :func:`stream_key`).  ``time`` (optional) maps a record to its
    delivery instant; when given, two extra clauses are checked:
    ``reordered`` must be globally time-ordered, and no record may be
    delivered *earlier* than its positional counterpart in
    ``original``'s stream (deferral only).  ``ident`` (optional) maps a
    record to its order-relevant identity — pass it when the two
    schedules are separate recordings (e.g. two simulation runs) whose
    records differ in their timestamps but must carry the same payloads
    in the same per-stream order; it defaults to the record itself.
    """
    if len(original) != len(reordered):
        return (
            f"length mismatch: {len(original)} original deliveries, "
            f"{len(reordered)} reordered"
        )
    if ident is None:
        ident = lambda record: record  # noqa: E731 - tiny default
    original_streams: Dict[Hashable, List[Any]] = {}
    for record in original:
        original_streams.setdefault(key(record), []).append(record)
    reordered_streams: Dict[Hashable, List[Any]] = {}
    for record in reordered:
        reordered_streams.setdefault(key(record), []).append(record)
    if set(original_streams) != set(reordered_streams):
        extra = set(reordered_streams) - set(original_streams)
        missing = set(original_streams) - set(reordered_streams)
        return f"stream sets differ (missing={missing!r}, extra={extra!r})"
    for stream, records in original_streams.items():
        moved = reordered_streams[stream]
        if len(moved) != len(records):
            return (
                f"stream {stream!r} carries {len(records)} deliveries "
                f"originally but {len(moved)} reordered"
            )
        for position, (before, after) in enumerate(zip(records, moved)):
            if ident(before) != ident(after):
                return (
                    f"per-stream FIFO broken on {stream!r} at position "
                    f"{position}: expected {ident(before)!r}, got "
                    f"{ident(after)!r}"
                )
            if time is not None and time(after) < time(before):
                return (
                    f"delivery moved earlier than its exact-order instant "
                    f"on {stream!r} at position {position}: "
                    f"{time(after)} < {time(before)}"
                )
    if time is not None:
        previous = None
        for index, record in enumerate(reordered):
            instant = time(record)
            if previous is not None and instant < previous:
                return (
                    f"delivery clock moved backwards at position {index}: "
                    f"{instant} < {previous}"
                )
            previous = instant
    return None


def is_protocol_safe(
    original: Sequence[Any],
    reordered: Sequence[Any],
    *,
    key: Callable[[Any], Hashable],
    time: Optional[Callable[[Any], float]] = None,
    ident: Optional[Callable[[Any], Any]] = None,
) -> bool:
    """``True`` iff ``reordered`` permutes (or defers) ``original``
    within the protocol-safe class: per-stream FIFO preserved, no
    delivery earlier than its exact-order instant, delivery clock
    non-decreasing.  See :func:`find_violation` for the diagnosis."""
    return (
        find_violation(original, reordered, key=key, time=time, ident=ident)
        is None
    )


def safe_shuffle(
    items: Sequence[Any],
    rng,
    *,
    key: Callable[[Any], Hashable],
    time: Optional[Callable[[Any], float]] = None,
) -> List[Any]:
    """A random protocol-safe permutation of ``items``: a uniformly
    random interleaving of the per-``key`` subsequences, each kept in
    its original order.  When ``time`` is given, shuffling happens only
    within runs of equal delivery instants, so global time order (and
    hence clock monotonicity) is preserved by construction.

    ``rng`` needs ``randrange`` (``random.Random`` qualifies); the
    result always satisfies :func:`is_protocol_safe` against ``items``.
    """
    result: List[Any] = []
    group: List[Any] = []
    group_time: Optional[float] = None
    for item in items:
        instant = time(item) if time is not None else None
        if time is not None and group and instant != group_time:
            result.extend(_merge_streams(group, rng, key))
            group = []
        group.append(item)
        group_time = instant
    if group:
        result.extend(_merge_streams(group, rng, key))
    return result


def _merge_streams(
    items: Sequence[Any], rng, key: Callable[[Any], Hashable]
) -> List[Any]:
    """Randomly merge ``items``' per-key subsequences, preserving each
    subsequence's internal order (one draw per output position,
    weighted by remaining stream length so every safe interleaving is
    reachable)."""
    streams: Dict[Hashable, List[Any]] = {}
    for item in items:
        streams.setdefault(key(item), []).append(item)
    queues = [list(reversed(stream)) for stream in streams.values()]
    merged: List[Any] = []
    while queues:
        total = sum(len(queue) for queue in queues)
        draw = rng.randrange(total)
        for index, queue in enumerate(queues):
            if draw < len(queue):
                merged.append(queue.pop())
                if not queue:
                    del queues[index]
                break
            draw -= len(queue)
    return merged
