"""Site/latency topologies, including the paper's Grid'5000 layout.

Paper Sec. 5.1: three sites (Bordeaux 49 nodes, Sophia 39, Rennes 40;
128 nodes total).  Intra-site RTTs 0.1-0.2 ms; inter-site RTTs 8 ms
(Rennes-Bordeaux), 10 ms (Bordeaux-Sophia), 20 ms (Rennes-Sophia).
One-way latency is modelled as RTT/2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Site:
    """A cluster site: a name, a node count and an intra-site RTT."""

    name: str
    node_count: int
    intra_rtt_s: float


class Topology:
    """Maps node names to sites and yields pairwise one-way latencies."""

    def __init__(
        self,
        sites: Sequence[Site],
        inter_rtt_s: Dict[Tuple[str, str], float],
    ) -> None:
        if not sites:
            raise ConfigurationError("a topology needs at least one site")
        self._sites = list(sites)
        self._inter_rtt: Dict[Tuple[str, str], float] = {}
        for (a, b), rtt in inter_rtt_s.items():
            self._inter_rtt[(a, b)] = rtt
            self._inter_rtt[(b, a)] = rtt
        self._node_site: Dict[str, Site] = {}
        self._nodes: List[str] = []
        for site in self._sites:
            for index in range(site.node_count):
                node = f"{site.name}-{index}"
                self._node_site[node] = site
                self._nodes.append(node)

    @property
    def nodes(self) -> List[str]:
        """All node names, grouped by site, stable order."""
        return list(self._nodes)

    @property
    def sites(self) -> List[Site]:
        return list(self._sites)

    def site_of(self, node: str) -> Site:
        try:
            return self._node_site[node]
        except KeyError:
            raise ConfigurationError(f"unknown node {node!r}") from None

    def one_way_latency(self, source: str, dest: str) -> float:
        """One-way latency between two nodes (RTT/2); zero for self."""
        if source == dest:
            return 0.0
        site_a = self.site_of(source)
        site_b = self.site_of(dest)
        if site_a.name == site_b.name:
            return site_a.intra_rtt_s / 2.0
        try:
            rtt = self._inter_rtt[(site_a.name, site_b.name)]
        except KeyError:
            raise ConfigurationError(
                f"no inter-site RTT configured for {site_a.name}<->{site_b.name}"
            ) from None
        return rtt / 2.0

    def max_one_way_latency(self) -> float:
        """Upper bound on one-way latency; feeds MaxComm."""
        worst = max(site.intra_rtt_s for site in self._sites) / 2.0
        for rtt in self._inter_rtt.values():
            worst = max(worst, rtt / 2.0)
        return worst


def grid5000_topology(scale: float = 1.0) -> Topology:
    """The paper's three-site Grid'5000 testbed.

    ``scale`` shrinks node counts proportionally (minimum one node per
    site) so laptop-scale experiments keep the site structure.
    """
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")

    def scaled(count: int) -> int:
        return max(1, round(count * scale))

    sites = [
        Site("bordeaux", scaled(49), intra_rtt_s=0.0002),
        Site("sophia", scaled(39), intra_rtt_s=0.0001),
        Site("rennes", scaled(40), intra_rtt_s=0.0001),
    ]
    inter = {
        ("rennes", "bordeaux"): 0.008,
        ("bordeaux", "sophia"): 0.010,
        ("rennes", "sophia"): 0.020,
    }
    return Topology(sites, inter)


def uniform_topology(node_count: int, rtt_s: float = 0.001) -> Topology:
    """A single-site topology: ``node_count`` nodes, uniform RTT."""
    return Topology([Site("site", node_count, intra_rtt_s=rtt_s)], {})


def clustered_topology(
    node_count: int,
    site_count: int = 4,
    intra_rtt_s: float = 0.001,
    inter_rtt_s: float = 0.040,
) -> Topology:
    """``site_count`` balanced sites with a uniform inter-site RTT.

    The natural shape for sharded execution: with one shard per site
    (:func:`repro.shard.make_plan` assigns contiguous blocks, and node
    order groups by site), the plan's lookahead is the inter-site
    one-way latency — the widest safe advance window the topology
    offers.
    """
    if site_count < 1:
        raise ConfigurationError(
            f"site_count must be positive, got {site_count}"
        )
    if node_count < site_count:
        raise ConfigurationError(
            f"need at least one node per site: {node_count} nodes "
            f"across {site_count} sites"
        )
    base, extra = divmod(node_count, site_count)
    sites = [
        Site(f"c{index}", base + (1 if index < extra else 0),
             intra_rtt_s=intra_rtt_s)
        for index in range(site_count)
    ]
    inter = {
        (sites[a].name, sites[b].name): inter_rtt_s
        for a in range(site_count)
        for b in range(a + 1, site_count)
    }
    return Topology(sites, inter)


def metro_wan_topology(
    node_count: int,
    site_count: int = 4,
    intra_rtt_s: float = 0.001,
    metro_rtt_s: float = 0.5,
    wan_rtt_s: float = 2.0,
) -> Topology:
    """Balanced sites paired into metros, metros bridged by a WAN.

    Consecutive sites form metro pairs — ``c0``/``c1``, ``c2``/``c3``,
    … — with ``metro_rtt_s`` between pair members and ``wan_rtt_s``
    between sites of different pairs.  This is the Grid'5000 shape the
    paper measures on (nearby clusters, a wide link between regions)
    reduced to two latency classes, and the topology where per-channel
    lookahead pays off: a shard boundary that falls *between* metros
    only crosses WAN channels, so its safe advance window is the WAN
    latency rather than the plan-wide minimum, while a boundary inside
    a metro stays bounded by the metro latency — exactly what
    :attr:`repro.shard.ShardPlan.lookahead_matrix` captures and a
    single scalar lookahead cannot.
    """
    if site_count < 1:
        raise ConfigurationError(
            f"site_count must be positive, got {site_count}"
        )
    if node_count < site_count:
        raise ConfigurationError(
            f"need at least one node per site: {node_count} nodes "
            f"across {site_count} sites"
        )
    if wan_rtt_s < metro_rtt_s:
        raise ConfigurationError(
            f"wan_rtt_s ({wan_rtt_s}) must be at least metro_rtt_s "
            f"({metro_rtt_s}): the WAN is the wide link"
        )
    base, extra = divmod(node_count, site_count)
    sites = [
        Site(f"c{index}", base + (1 if index < extra else 0),
             intra_rtt_s=intra_rtt_s)
        for index in range(site_count)
    ]
    inter = {}
    for a in range(site_count):
        for b in range(a + 1, site_count):
            same_metro = a // 2 == b // 2
            inter[(sites[a].name, sites[b].name)] = (
                metro_rtt_s if same_metro else wan_rtt_s
            )
    return Topology(sites, inter)
