"""The network fabric: routes traffic between nodes.

Responsibilities:

* keep one :class:`FifoChannel` per ordered node pair (lazily created),
* apply the latency model from the :class:`Topology` plus any fault-plan
  extra delays,
* short-circuit intra-node messages (delivered at the same simulated time,
  bypassing the accountant — paper Sec. 5: intra-JVM messages are passed
  by reference and not accounted),
* feed every cross-node message to the :class:`BandwidthAccountant`,
* in *pulse-batched* mode (the beat wheel's companion), coalesce every
  delivery sharing an exact delivery instant into one kernel event.

The fabric carries two message forms over one staged transport:

* **typed** (:meth:`Network.send_typed`) — the primary, allocation-light
  form: ``(kind, item, payload)`` staged directly into the pulse for its
  delivery instant and dispatched through the destination node's typed
  sink.  Every traffic kind — app requests, future replies, registry
  lookups and DGC protocol messages — rides this path; no per-message
  :class:`Envelope` is allocated.
* **envelope** (:meth:`Network.send`) — the per-event baseline and
  compatibility form: one :class:`Envelope` per transmission, one kernel
  event per delivery when batching is off.  ``send_typed`` falls back to
  it whenever pulse semantics cannot hold (variable per-message latency
  from fault-plan delay rules, destinations without a typed sink, or
  batching disabled), so fixed-seed runs are bit-identical between the
  two delivery modes.

Pulse storage comes in two selectable shapes:

* **aggregated columnar** (``aggregate_site_pairs`` on, the default
  batched core) — per-instant pulse records pooled and recycled across
  instants through a free list, so steady-state staging allocates
  O(instants), not O(messages).  DGC traffic rides the fused
  :meth:`send_dgc_single`/:meth:`send_dgc_run` lanes: messages staged
  back-to-back on the same channel coalesce into **one** site-pair
  aggregate entry carrying flat parallel ``(target_id, message)``
  columns, which the destination unwraps in one batch-sink call —
  per-message kind dispatch and route re-probing disappear for the whole
  run.  Runs only ever merge when *adjacent in stage order*, so the
  global delivery sequence — and with it per-channel FIFO and every
  fixed-seed outcome — is preserved by construction.  (A
  struct-of-arrays record for *plain* entries was measured slower than
  the tuple layout — five list appends beat one tuple only when entries
  merge — so the columnar form lives where it pays: the aggregate runs'
  flat columns and the pooled records; see PERFORMANCE.md.)
* **per-entry** (``aggregate_site_pairs`` off) — the previous batched
  core: one freshly-allocated list of 6-tuples per instant, one entry
  and one typed dispatch per message.  Kept selectable as the A/B
  baseline the aggregated columnar core is benchmarked against.

On top of the aggregated columnar shape sits the **relaxed** tier
(``relaxed_aggregation`` on, selected by
``DgcConfig.aggregation="relaxed"``): instead of staging each DGC send
at its exact delivery instant, cross-node DGC traffic accumulates per
``(channel, kind)`` stream — :func:`repro.net.reorder.stream_key`'s
FIFO coordinate — and is flushed once per flush period by a beat-wheel
bucket.  The flush reserves FIFO positions and accounts per stream,
then merges every stream bound for the same ``(delivery instant,
destination, kind)`` into **one** columnar aggregate entry — one entry
per destination *site* per bucket, not per site pair — and intra-node
DGC coalesces per ``(site, kind)`` and is handed straight to the
destination's sinks at the flush instant, never touching the pulse.
Deliveries are thereby *deferred* (by less than one flush period, to
the next absolute grid boundary) but never reordered within a stream
and never moved earlier, which is exactly the protocol-safe class
:mod:`repro.net.reorder` encodes: per-stream FIFO plus delivery-clock
monotonicity is all the DGC's correctness argument uses (paper
Sec. 3.2).  Exact-order tracer equivalence is traded away — collection
*instants* shift within the deferral bound, and with them run length
and traffic totals — in exchange for an order-of-magnitude fewer
staged entries at Fig. 10 scale; collection outcomes and safety remain
identical to the per-event core (the relaxed equivalence tier, see
PERFORMANCE.md).
"""
# repro: hot-path — every class slotted, no closure allocation in loops (HOT rules)

from __future__ import annotations

from math import floor
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import NetworkError, UnknownDestinationError
from repro.net.accounting import BandwidthAccountant
from repro.net.channel import FifoChannel
from repro.net.faults import FaultPlan
from repro.net.kinds import (
    AGGREGATE_KINDS,
    KIND_DGC_MESSAGE,
    KIND_DGC_RESPONSE,
    PAIRED_PAYLOAD_KINDS,
    bind_dispatch_shapes,
)
from repro.net.message import Envelope
from repro.net.topology import Topology
from repro.sim.kernel import SimKernel

#: Internal aggregate markers (see :data:`repro.net.message.AGGREGATE_KINDS`);
#: bound to module globals so the hot paths compare by identity.
_AGG_DGC_MESSAGE = AGGREGATE_KINDS[KIND_DGC_MESSAGE]
_AGG_DGC_RESPONSE = AGGREGATE_KINDS[KIND_DGC_RESPONSE]

# The snapshot above means later paired/aggregate registrations would be
# invisible here; tell the registry so register_kind can reject them.
bind_dispatch_shapes("repro.net.network")

#: Free-list high-water mark: distinct in-flight delivery instants are
#: bounded by distinct channel latencies, so a short list suffices; the
#: cap only guards against pathological churn keeping dead records alive.
_PULSE_POOL_CAP = 64


def _drop_payload(payload: Any) -> None:
    """Shared no-op :attr:`Envelope.deliver` for fallback typed envelopes
    (dispatch happens through node sinks)."""


class _IngressChannel:
    """Stand-in channel for cross-shard entries injected into the local
    pulse: the columnar fire loop bumps ``delivered_count`` and branches
    on ``channel is not None``, and injected traffic needs both — but
    the real :class:`FifoChannel` lives wholly on the *sender's* shard
    (it computed the delivery time and did the accounting before the
    entry crossed the wire), so the receive side only needs this
    counter."""

    __slots__ = ("delivered_count",)

    def __init__(self) -> None:
        self.delivered_count = 0


# repro: allow[HOT-slots] one Network per world (no per-event instances), and benchmarks monkeypatch send on the instance, which needs the __dict__
class Network:
    """Connects registered node sinks through FIFO channels.

    Pulse entry layout (shared by both batched cores) is
    ``(channel, sink, dest, kind, item, payload)``:

    * envelope entries — ``kind`` is ``None``, ``item`` the envelope;
      local ones carry their resolved sink, cross-node ones re-resolve
      the destination at delivery,
    * typed entries — ``kind`` is a traffic-kind constant; local ones
      carry the resolved typed sink, cross-node ones the destination
      node name in ``dest``,
    * aggregate entries (aggregated core only) — ``kind`` is an
      :data:`~repro.net.message.AGGREGATE_KINDS` marker and
      ``item``/``payload`` are flat parallel ``(target_id, message)``
      column lists covering an adjacent same-channel run of DGC traffic.
    """

    def __init__(
        self,
        kernel: SimKernel,
        topology: Topology,
        *,
        accountant: Optional[BandwidthAccountant] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self._kernel = kernel
        self._topology = topology
        self.accountant = accountant if accountant is not None else BandwidthAccountant()
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        self._sinks: Dict[str, Callable[[Envelope], None]] = {}
        self._channels: Dict[Tuple[str, str], FifoChannel] = {}
        #: Per-node typed dispatchers ``(kind, item, payload) -> None``:
        #: the envelope-free receive path of the unified fabric, one sink
        #: per node for *all* traffic kinds.
        self._typed_sinks: Dict[str, Callable[[str, Any, Any], None]] = {}
        #: Per-node DGC receive lanes of the aggregated core, keyed by
        #: destination: single-message handlers ``(target, message)``
        #: (skipping the typed sink's kind dispatch) and aggregate
        #: unwrappers ``(targets, messages)`` looping the flat columns
        #: locally.
        self._dgc_message_sinks: Dict[str, Callable[[Any, Any], None]] = {}
        self._dgc_response_sinks: Dict[str, Callable[[Any, Any], None]] = {}
        self._dgc_message_batch_sinks: Dict[str, Callable[[list, list], None]] = {}
        self._dgc_response_batch_sinks: Dict[str, Callable[[list, list], None]] = {}
        #: When true (the beat wheel is active), *all* deliveries are
        #: pulse-batched: every send staged for the same delivery
        #: instant shares one kernel event, so a beat bucket's whole
        #: fan-out — and an NAS iteration's whole exchange wave — costs
        #: O(distinct delivery times) heap traffic instead of
        #: O(messages).  Delivery times (per-channel latency plus the
        #: FIFO clamp), accounting, partition drops and per-channel
        #: counters are computed exactly as on the per-event path, and
        #: entries fire in stage order — which is send order, also
        #: *across* traffic kinds, so per-channel FIFO (paper Sec. 3.2)
        #: is preserved by construction and fixed-seed outcomes are
        #: bit-identical with per-event delivery.
        self.pulse_batching = False
        #: The aggregated columnar core (see module docstring).  Off,
        #: the per-entry batched pulse of the previous core is used —
        #: the A/B baseline.  Only meaningful while ``pulse_batching``
        #: is on.
        self.aggregate_site_pairs = False
        #: The relaxed coalescing tier (see module docstring): DGC sends
        #: accumulate per ``(channel, kind)`` stream and flush once per
        #: :attr:`_relaxed_flush_s` on the beat wheel's absolute grid.
        #: Only meaningful on top of the aggregated columnar core;
        #: enable through :meth:`configure_relaxed`.
        self.relaxed_aggregation = False
        self._relaxed_flush_s: Optional[float] = None
        #: ``(channel, kind) -> [dest, size_bytes, targets, messages]``
        #: accumulator, insertion-ordered (deterministic flush order).
        self._relaxed_acc: Dict[tuple, list] = {}
        #: ``(dest, kind) -> [targets, messages]`` accumulator for
        #: intra-node DGC (no channel, no wire): delivered straight to
        #: the destination's sinks at the flush instant.
        self._relaxed_local_acc: Dict[tuple, list] = {}
        #: The live flush beat (a :class:`repro.sim.beats.BeatHandle`);
        #: armed lazily on first accumulation, stopped again by a flush
        #: that finds the accumulator drained — idle worlds schedule
        #: nothing, mirroring the registry's lazy lease sweep.
        self._relaxed_beat = None
        #: Aggregate entries emitted by relaxed flushes (the coalescing
        #: denominator: constituents / flushed entries is the tier's
        #: merge ratio).
        self.relaxed_flush_count = 0
        self._pulses: Dict[float, list] = {}
        #: Free list of recycled pulse records (aggregated core): the
        #: per-instant entry lists are cleared and reused, keeping their
        #: grown capacity, so steady-state staging allocates nothing.
        self._pulse_pool: List[list] = []
        #: One-slot staging memo (aggregated core): consecutive sends
        #: overwhelmingly share a delivery instant (a fan-out's channels
        #: have equal latencies), so the float-keyed dict probe is
        #: skipped when the instant repeats.  Invalidated when the
        #: matching pulse fires.
        self._last_pulse_time = -1.0
        self._last_pulse: list = []
        #: Accounting memo for the fused DGC lane: the two live
        #: per-kind categories, re-fetched whenever ``accountant`` is
        #: replaced (it is a public attribute).
        self._acct_owner: Optional[BandwidthAccountant] = None
        self._acct_msg = None
        self._acct_resp = None
        #: Clock fast path: the simulation kernel maintains ``_now`` as
        #: a plain attribute (its ``now`` property just reads it); the
        #: live kernel computes ``now`` dynamically and keeps the
        #: property path.
        self._fast_clock = hasattr(kernel, "_now")
        #: Kernel events created on behalf of pulses; with
        #: ``sent_count`` sums this is the fabric's batching ratio.
        self.pulse_event_count = 0
        #: Pulse entries actually delivered (counted per pulse at fire
        #: time): the staged-entry axis the relaxed tier is gated on —
        #: entries, not messages, are what staging and dispatch pay for.
        self.staged_entry_count = 0
        #: Test hook: when set, ``permuter(delivery_time, entries)`` is
        #: applied to every pulse's entry list before delivery.  The
        #: property suite installs :func:`repro.net.reorder.safe_shuffle`
        #: here to exercise the protocol-safe reordering class on live
        #: schedules; ``None`` (always, outside tests) costs one
        #: attribute read per pulse.
        self.pulse_permuter: Optional[Callable[[float, list], list]] = None
        #: Site-pair aggregation effectiveness: constituent DGC messages
        #: that merged into an already-staged aggregate entry.
        self.aggregated_message_count = 0
        #: Shard-boundary egress (:meth:`configure_shard_egress`): the
        #: set of topology nodes owned by *other* shards, the staging
        #: buffer the coordinator round drains into wire frames, and the
        #: ingress stand-in channel for injected remote entries.
        self._egress_nodes: Optional[frozenset] = None
        self.egress_buffer: List[tuple] = []
        self.egress_message_count = 0
        self._ingress = _IngressChannel()
        self.injected_entry_count = 0
        #: Kernel events created *by injection* — pulse instants that
        #: exist only because a cross-shard frame landed there.  The
        #: worker subtracts this from the kernel's fired count to split
        #: coordination work from workload work in its stats (an
        #: injected instant a local pulse later merges into is charged
        #: to coordination; the reverse is charged to workload — the
        #: attribution of shared instants, not the event total, is the
        #: approximation).
        self.ingress_pulse_event_count = 0
        #: Hot-path cache: source -> dest -> (sink, channel-or-None).
        #: ``None`` channel means intra-node delivery.  Two nested
        #: string-keyed dicts avoid building a key tuple per message.
        #: Nodes only ever register (there is no unregister), so entries
        #: never go stale; the cache is cleared on registration anyway
        #: for hygiene.
        self._routes: Dict[
            str,
            Dict[str, Tuple[Callable[[Envelope], None], Optional[FifoChannel]]],
        ] = {}

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def kernel(self) -> SimKernel:
        return self._kernel

    def register_node(
        self,
        node: str,
        sink: Callable[[Envelope], None],
        typed_sink: Optional[Callable[[str, Any, Any], None]] = None,
        dgc_sinks: Optional[
            Dict[str, Tuple[Callable[[Any, Any], None], Callable[[list, list], None]]]
        ] = None,
    ) -> None:
        """Attach a node's receive dispatchers to the fabric.

        ``typed_sink`` is the envelope-free entry point for pulse-batched
        traffic of every kind; nodes that do not provide one fall back to
        the per-envelope path even when batching is enabled.
        ``dgc_sinks`` maps a DGC kind to its ``(single, batch)`` handler
        pair — the aggregated core's direct receive lanes; without them
        DGC traffic for this node rides the typed sink like every other
        kind.
        """
        self._sinks[node] = sink
        if typed_sink is not None:
            self._typed_sinks[node] = typed_sink
        if dgc_sinks:
            for kind, (single, batch) in dgc_sinks.items():
                if kind == KIND_DGC_MESSAGE:
                    self._dgc_message_sinks[node] = single
                    self._dgc_message_batch_sinks[node] = batch
                elif kind == KIND_DGC_RESPONSE:
                    self._dgc_response_sinks[node] = single
                    self._dgc_response_batch_sinks[node] = batch
        self._routes.clear()

    def max_comm(self) -> float:
        """Upper bound on one-way communication time (MaxComm, Sec. 3.1)."""
        return self._topology.max_one_way_latency()

    def configure_relaxed(self, flush_period: float) -> None:
        """Enable the relaxed coalescing tier with the given flush
        period (seconds).  Requires the aggregated columnar core
        (``pulse_batching`` + ``aggregate_site_pairs``); the flush beat
        itself is armed lazily on first DGC accumulation."""
        if flush_period <= 0:
            raise ValueError(
                f"relaxed flush period must be positive, got {flush_period}"
            )
        self.relaxed_aggregation = True
        self._relaxed_flush_s = flush_period

    def configure_shard_egress(self, local_nodes) -> None:
        """Mark every topology node outside ``local_nodes`` as living on
        a remote shard: traffic for those destinations is *staged at
        send time* exactly as local traffic (the directed
        :class:`FifoChannel` lives wholly on the sender's shard, so the
        FIFO clamp and the accountant see the send here and only here),
        but instead of entering the local pulse the
        ``(delivery_time, dest, kind, item, payload)`` columns land in
        :attr:`egress_buffer` — the literal content of the next wire
        frame (:mod:`repro.net.wire`).  Requires the batched pulse core;
        the per-event envelope path raises on shard-remote destinations
        (see :meth:`send`)."""
        self._egress_nodes = frozenset(self._topology.nodes) - frozenset(
            local_nodes
        )
        self._routes.clear()

    def drain_egress(self) -> List[tuple]:
        """Detach and return the staged cross-shard entries (the frame
        body for this round), oldest first."""
        drained = self.egress_buffer
        self.egress_buffer = []
        return drained

    def inject_remote_entries(self, entries) -> None:
        """Stage decoded cross-shard entries into the local pulse.

        Called between kernel advances (single-threaded), with every
        entry's delivery time at or after the granted horizon — the
        coordinator's lookahead guarantee; an earlier delivery would
        mean the conservative-horizon proof was violated, so it raises
        rather than silently reordering.  No accounting happens here:
        the sending shard already charged the traffic (the merged
        accountant is the sum over shards).
        """
        kernel = self._kernel
        now = kernel._now if self._fast_clock else kernel.now
        ingress = self._ingress
        stage = self._stage
        pulses_before = self.pulse_event_count
        for delivery, dest, kind, item, payload in entries:
            if delivery < now:
                raise NetworkError(
                    f"late cross-shard entry: delivery {delivery} is "
                    f"before local time {now} (lookahead violated)"
                )
            stage(delivery, (ingress, None, dest, kind, item, payload))
            self.injected_entry_count += 1
        self.ingress_pulse_event_count += (
            self.pulse_event_count - pulses_before
        )

    # ------------------------------------------------------------------
    # Send paths
    # ------------------------------------------------------------------

    def send_typed(
        self,
        source: str,
        dest: str,
        kind: str,
        size_bytes: int,
        item: Any,
        payload: Any = None,
    ) -> None:
        """Route one typed message — the unified, allocation-light send
        path every traffic kind goes through.

        In pulse-batched mode the message is staged for its exact
        per-envelope delivery instant (computed by the channel itself:
        constant latency, FIFO clamp, send counter — see
        :meth:`FifoChannel.stage_send`); all traffic sharing that instant
        rides one kernel event and no :class:`Envelope` is allocated.
        Accounting and partition drops match :meth:`send`, so batching
        changes heap traffic and allocations, never simulation outcomes.

        Falls back to the per-envelope path whenever pulse semantics
        cannot hold: batching disabled (the per-event baseline), channels
        with fault-plan delay rules (their latency is per-message), or
        an envelope-only destination.
        """
        if not self.pulse_batching:
            self.send(
                Envelope(source, dest, kind, size_bytes,
                         self._envelope_payload(kind, item, payload),
                         _drop_payload)
            )
            return
        by_dest = self._routes.get(source)
        route = by_dest.get(dest) if by_dest is not None else None
        if route is None:
            route = self._build_route(source, dest)
        fault_plan = self.fault_plan
        if fault_plan._partitioned and fault_plan.is_partitioned(source, dest):
            fault_plan.dropped_count += 1
            return
        channel = route[1]
        if route[0] is None:
            # Shard-remote destination: the sender-side channel reserves
            # the FIFO slot and the accountant charges the send exactly
            # as for a local staging; the entry columns then ride the
            # next wire frame instead of the local pulse.
            delivery_time = channel.stage_send()
            self.accountant.observe_sized(kind, size_bytes, channel.pair)
            self.egress_buffer.append(
                (delivery_time, dest, kind, item, payload)
            )
            self.egress_message_count += 1
            return
        if channel is None:
            # Intra-node: delivered at the current instant, unaccounted.
            typed_sink = self._typed_sinks.get(dest)
            if typed_sink is None:
                self.send(
                    Envelope(source, dest, kind, size_bytes,
                             self._envelope_payload(kind, item, payload),
                             _drop_payload)
                )
                return
            self._stage(
                self._kernel.now,
                (None, typed_sink, dest, kind, item, payload),
            )
            return
        if (
            channel._base_latency is None
            or (
                channel._delay_rules
                and self.fault_plan.may_delay(source, dest, kind)
            )
            or dest not in self._typed_sinks
        ):
            # Variable latency (the pulse cannot share instants
            # meaningfully — only for streams a delay rule could
            # actually match; unmatched kinds keep pulse semantics)
            # or an envelope-only destination: keep the per-envelope
            # path's semantics.
            self.send(
                Envelope(source, dest, kind, size_bytes,
                         self._envelope_payload(kind, item, payload),
                         _drop_payload)
            )
            return
        delivery_time = channel.stage_send()
        self.accountant.observe_sized(kind, size_bytes, channel.pair)
        # Cross-node: resolved again at delivery so a node that
        # vanishes mid-flight drops the entry (mirrors _dispatch).
        self._stage(
            delivery_time,
            (channel, None, dest, kind, item, payload),
        )

    def send_dgc_single(
        self,
        source: str,
        dest: str,
        kind: str,
        size_bytes: int,
        item: Any,
        payload: Any,
    ) -> None:
        """Fused DGC send lane of the aggregated columnar core: one
        frame from the node to the staged pulse entry.

        Equivalent to :meth:`send_typed` — same route/partition/fallback
        semantics, same accounting, same FIFO reservation — plus the
        site-pair tail merge: when the pulse's most recently staged
        entry is a same-channel DGC entry of the same kind, this message
        joins its flat ``(target_id, message)`` columns instead of
        adding an entry.  Merging only ever extends the *tail*, so the
        global delivery sequence equals per-message stage order exactly.
        """
        if not (self.pulse_batching and self.aggregate_site_pairs):
            self.send_typed(source, dest, kind, size_bytes, item, payload)
            return
        by_dest = self._routes.get(source)
        route = by_dest.get(dest) if by_dest is not None else None
        if route is None:
            route = self._build_route(source, dest)
        fault_plan = self.fault_plan
        if fault_plan._partitioned and fault_plan.is_partitioned(source, dest):
            fault_plan.dropped_count += 1
            return
        channel = route[1]
        relaxed = self.relaxed_aggregation
        if (
            relaxed
            and channel is None
            and dest in self._dgc_message_batch_sinks
            and dest in self._dgc_response_batch_sinks
        ):
            # Relaxed tier, intra-node: coalesce per (site, kind) and
            # deliver the whole bucket straight to the DGC sinks at the
            # flush instant — no wire, no accounting, no pulse entry.
            acc = self._relaxed_local_acc
            box = acc.get((dest, kind))
            if box is None:
                acc[(dest, kind)] = [[item], [payload]]
                if self._relaxed_beat is None:
                    self._arm_relaxed_flush()
            else:
                box[0].append(item)
                box[1].append(payload)
                self.aggregated_message_count += 1
            return
        if not route[2] or (
            channel._delay_rules
            and self.fault_plan.may_delay(source, dest, kind)
        ):
            self.send_typed(source, dest, kind, size_bytes, item, payload)
            return
        if relaxed:
            # Relaxed tier: join the per-(channel, kind) stream
            # accumulator; FIFO reservation and accounting happen at
            # flush time (totals are bit-identical — same messages,
            # same sizes, same counts).
            acc = self._relaxed_acc
            box = acc.get((channel, kind))
            if box is None:
                acc[(channel, kind)] = [dest, size_bytes, [item], [payload]]
                if self._relaxed_beat is None:
                    self._arm_relaxed_flush()
            else:
                box[2].append(item)
                box[3].append(payload)
                self.aggregated_message_count += 1
            return
        # Inlined FifoChannel.stage_send_n(1): clamp + counter without a
        # callee frame — this lane runs once per DGC message at scale.
        latency = channel._base_latency
        if latency < 0.0:
            latency = 0.0
        kernel = self._kernel
        now = kernel._now if self._fast_clock else kernel.now
        delivery_time = now + latency
        if delivery_time < channel._last_delivery_time:
            delivery_time = channel._last_delivery_time
        else:
            channel._last_delivery_time = delivery_time
        channel.sent_count += 1
        # Inlined BandwidthAccountant.observe_sized through the memoized
        # per-kind categories and the channel's lent per-pair byte box
        # (bit-identical totals, no callee frame, no dict probes).
        acct = self.accountant
        if acct is not self._acct_owner:
            self._acct_owner = acct
            self._acct_msg = acct.category(KIND_DGC_MESSAGE)
            self._acct_resp = acct.category(KIND_DGC_RESPONSE)
            for stale in self._channels.values():
                stale.acct_box = None
        is_message = kind is KIND_DGC_MESSAGE or kind == KIND_DGC_MESSAGE
        category = self._acct_msg if is_message else self._acct_resp
        category.bytes += size_bytes
        category.messages += 1
        box = channel.acct_box
        if box is None:
            channel.acct_box = box = acct.pair_box(channel.pair)
        box[0] += size_bytes
        if delivery_time == self._last_pulse_time:
            entries = self._last_pulse
        else:
            pulses = self._pulses
            entries = pulses.get(delivery_time)
            if entries is None:
                pool = self._pulse_pool
                entries = pool.pop() if pool else []
                pulses[delivery_time] = entries
                self._kernel.schedule_fire_at(
                    delivery_time, self._fire_pulse_columnar, (delivery_time,)
                )
                self.pulse_event_count += 1
                self._last_pulse_time = delivery_time
                self._last_pulse = entries
                entries.append((channel, None, dest, kind, item, payload))
                return
            self._last_pulse_time = delivery_time
            self._last_pulse = entries
        last = entries[-1]
        if last[0] is channel:
            last_kind = last[3]
            agg_kind = _AGG_DGC_MESSAGE if is_message else _AGG_DGC_RESPONSE
            if last_kind is agg_kind:
                last[4].append(item)
                last[5].append(payload)
                self.aggregated_message_count += 1
                return
            if last_kind == kind:
                # Promote the adjacent single into an aggregate pair —
                # the batch sinks are guaranteed present: this lane is
                # only reached through the route's ``dgc_fast`` check.
                entries[-1] = (
                    channel, None, dest, agg_kind,
                    [last[4], item], [last[5], payload],
                )
                self.aggregated_message_count += 1
                return
        entries.append((channel, None, dest, kind, item, payload))

    def send_dgc_run(
        self,
        source: str,
        dest: str,
        kind: str,
        size_bytes: int,
        targets: list,
        messages: list,
    ) -> None:
        """Route a run of same-kind DGC messages staged at one instant
        for one destination node — a collector broadcast's per-site
        fan-out, sent with **one** route probe, one FIFO reservation,
        one accounting call and one pulse entry.

        ``targets``/``messages`` are parallel ``(target_id, message)``
        columns in send order; ownership transfers to the fabric.  Every
        constituent is accounted at ``size_bytes`` (DGC messages are of
        fixed size, paper Sec. 4.3) and counted individually, and the
        run occupies consecutive stage positions, so outcomes are
        bit-identical to sending each message through
        :meth:`send_typed` — which is exactly what the fallback does
        whenever aggregation or batching is off, the channel has
        fault-plan delay rules, or the destination lacks a batch sink.
        """
        count = len(targets)
        if count == 0:
            return
        if count == 1:
            self.send_dgc_single(
                source, dest, kind, size_bytes, targets[0], messages[0]
            )
            return
        if not (self.pulse_batching and self.aggregate_site_pairs):
            for index in range(count):
                self.send_typed(
                    source, dest, kind, size_bytes,
                    targets[index], messages[index],
                )
            return
        by_dest = self._routes.get(source)
        route = by_dest.get(dest) if by_dest is not None else None
        if route is None:
            route = self._build_route(source, dest)
        fault_plan = self.fault_plan
        if fault_plan._partitioned and fault_plan.is_partitioned(source, dest):
            fault_plan.dropped_count += count
            return
        channel = route[1]
        agg_kind = (
            _AGG_DGC_MESSAGE if kind == KIND_DGC_MESSAGE else _AGG_DGC_RESPONSE
        )
        if route[0] is None:
            # Shard-remote run: one FIFO reservation, one accounting
            # call, one *aggregate* frame entry — the receiving shard's
            # batch sink unwraps the flat columns, so the columnar win
            # survives the process boundary.
            delivery_time = channel.stage_send_n(count)
            self.accountant.observe_run(kind, size_bytes, channel.pair, count)
            self.egress_buffer.append(
                (delivery_time, dest, agg_kind, targets, messages)
            )
            self.egress_message_count += count
            self.aggregated_message_count += count - 1
            return
        relaxed = self.relaxed_aggregation
        if (
            relaxed
            and channel is None
            and dest in self._dgc_message_batch_sinks
            and dest in self._dgc_response_batch_sinks
        ):
            acc = self._relaxed_local_acc
            box = acc.get((dest, kind))
            if box is None:
                acc[(dest, kind)] = [targets, messages]
                if self._relaxed_beat is None:
                    self._arm_relaxed_flush()
                self.aggregated_message_count += count - 1
            else:
                box[0].extend(targets)
                box[1].extend(messages)
                self.aggregated_message_count += count
            return
        if not route[2] or (
            channel._delay_rules
            and self.fault_plan.may_delay(source, dest, kind)
        ):
            # Intra-node, variable-latency or batch-less destination:
            # per-message semantics, exact same order.
            for index in range(count):
                self.send_typed(
                    source, dest, kind, size_bytes,
                    targets[index], messages[index],
                )
            return
        if relaxed:
            acc = self._relaxed_acc
            box = acc.get((channel, kind))
            if box is None:
                acc[(channel, kind)] = [dest, size_bytes, targets, messages]
                if self._relaxed_beat is None:
                    self._arm_relaxed_flush()
                self.aggregated_message_count += count - 1
            else:
                box[2].extend(targets)
                box[3].extend(messages)
                self.aggregated_message_count += count
            return
        delivery_time = channel.stage_send_n(count)
        self.accountant.observe_run(kind, size_bytes, channel.pair, count)
        if delivery_time == self._last_pulse_time:
            entries = self._last_pulse
        else:
            pulses = self._pulses
            entries = pulses.get(delivery_time)
            if entries is None:
                pool = self._pulse_pool
                entries = pool.pop() if pool else []
                pulses[delivery_time] = entries
                self._kernel.schedule_fire_at(
                    delivery_time, self._fire_pulse_columnar, (delivery_time,)
                )
                self.pulse_event_count += 1
                self._last_pulse_time = delivery_time
                self._last_pulse = entries
                entries.append(
                    (channel, None, dest, agg_kind, targets, messages)
                )
                self.aggregated_message_count += count - 1
                return
            self._last_pulse_time = delivery_time
            self._last_pulse = entries
        last = entries[-1]
        if last[0] is channel:
            last_kind = last[3]
            if last_kind is agg_kind:
                last[4].extend(targets)
                last[5].extend(messages)
                self.aggregated_message_count += count
                return
            if last_kind == kind:
                # Promote the adjacent single entry into the aggregate.
                targets.insert(0, last[4])
                messages.insert(0, last[5])
                entries[-1] = (channel, None, dest, agg_kind, targets, messages)
                self.aggregated_message_count += count
                return
        entries.append((channel, None, dest, agg_kind, targets, messages))
        self.aggregated_message_count += count - 1

    @staticmethod
    def _envelope_payload(kind: str, item: Any, payload: Any) -> Any:
        """The legacy :class:`Envelope` payload shape for a typed
        message: a pair for the paired kinds (DGC), the bare item
        otherwise."""
        if kind in PAIRED_PAYLOAD_KINDS:
            return (item, payload)
        return item

    def send(self, envelope: Envelope) -> None:
        """Route a pre-built ``envelope`` to its destination node — the
        per-event baseline and the fallback for traffic that cannot ride
        the pulse.

        The (sink, channel) pair per node pair is cached so the hot path
        pays one dict probe instead of sink lookup + channel lookup per
        envelope.  Cross-node deliveries still go through ``_dispatch``
        (a delivery-time sink lookup) so a destination that vanishes
        mid-flight drops the envelope, as the fault model requires.

        In pulse-batched mode the envelope is staged by delivery instant
        instead of getting its own kernel event; everything else —
        times, accounting, counters, per-channel order — is unchanged.
        """
        source = envelope.source_node
        dest = envelope.dest_node
        by_dest = self._routes.get(source)
        route = by_dest.get(dest) if by_dest is not None else None
        if route is None:
            route = self._build_route(source, dest)
        # Read through fault_plan each time (it is a public attribute and
        # may be replaced); the set's truthiness is the zero-cost guard.
        fault_plan = self.fault_plan
        if fault_plan._partitioned and fault_plan.is_partitioned(source, dest):
            fault_plan.dropped_count += 1
            return
        sink = route[0]
        channel = route[1]
        if sink is None:
            # A shard-remote destination on the per-envelope path: the
            # wire frame carries staged pulse columns, not envelopes, so
            # sharded runs require the batched core end to end (the
            # harness rejects the per-event core and fault-plan delay
            # rules under --shards for exactly this reason).
            raise NetworkError(
                f"envelope for {dest!r} would cross a shard boundary: "
                "cross-shard traffic requires pulse batching "
                "(batched_beats on, no fault-plan delay rules)"
            )
        if channel is None:
            # Intra-node: delivered immediately (same tick), not accounted.
            if self.pulse_batching:
                envelope.sent_at = self._kernel.now
                self._stage(self._kernel.now,
                            (None, sink, dest, None, envelope, None))
                return
            self._kernel.schedule_fire_at(
                self._kernel.now, self._deliver_local, (envelope, sink)
            )
            return
        self.accountant.observe_sized(
            envelope.kind, envelope.size_bytes, channel.pair
        )
        if (
            self.pulse_batching
            and channel._base_latency is not None
            and not (
                channel._delay_rules
                and fault_plan.may_delay(source, dest, envelope.kind)
            )
        ):
            envelope.sent_at = self._kernel.now
            self._stage(channel.stage_send(),
                        (channel, None, dest, None, envelope, None))
            return
        channel.send(envelope, self._dispatch)

    # ------------------------------------------------------------------
    # Pulse staging and firing
    # ------------------------------------------------------------------

    def _stage(self, delivery_time: float, entry: tuple) -> None:
        """Append one delivery to the pulse for ``delivery_time``,
        creating its (single) kernel event on first use.

        The aggregated core reuses recycled entry lists from the free
        list and fires through the columnar loop; the per-entry baseline
        allocates a fresh list per instant, exactly as the previous core
        did.
        """
        pulses = self._pulses
        batch = pulses.get(delivery_time)
        if batch is None:
            if self.aggregate_site_pairs:
                pool = self._pulse_pool
                batch = pool.pop() if pool else []
                fire = self._fire_pulse_columnar
            else:
                batch = []
                fire = self._fire_pulse
            pulses[delivery_time] = batch
            self._kernel.schedule_fire_at(delivery_time, fire, (delivery_time,))
            self.pulse_event_count += 1
        batch.append(entry)

    def _arm_relaxed_flush(self) -> None:
        """Arm the relaxed tier's flush beat, aligned to the *absolute*
        ``k * flush_period`` grid.

        Grid alignment (rather than "one period from the first send")
        makes the flush instants independent of which stream happened
        to accumulate first — deterministic across runs — and makes
        each channel's deferral offset constant in steady state, so
        heartbeat inter-arrival gaps stay exactly TTB and referencer
        records never expire spuriously (the relaxed tier's safety
        argument, PERFORMANCE.md)."""
        period = self._relaxed_flush_s
        kernel = self._kernel
        now = kernel._now if self._fast_clock else kernel.now
        next_boundary = (floor(now / period) + 1.0) * period
        self._relaxed_beat = kernel.schedule_periodic(
            period,
            self._flush_relaxed,
            first_delay=next_boundary - now,
            label="net.relaxed-flush",
        )

    def _flush_relaxed(self) -> None:
        """Flush the per-(channel, kind) accumulator: one FIFO
        reservation and one :meth:`~repro.net.accounting.BandwidthAccountant.observe_run`
        per stream, then one columnar aggregate entry per **(delivery
        instant, destination, kind)** — the relaxed tier's whole point:
        staging cost per (site, beat bucket), not per message.

        The second-level merge is what pushes past the per-site-pair
        ceiling: streams from *different* source channels bound for the
        same destination at the same instant share one entry.  That is
        protocol-safe by construction — per-stream FIFO is untouched
        (each channel's columns are appended as a contiguous block, in
        send order), delivery clocks are each channel's own
        ``stage_send_n`` reservation (entries only merge when those
        agree bit-for-bit), and the batch sinks never look at the source
        — and it matters because DGC fan-out is sparse: at Fig. 10 scale
        a (site pair, TTB bucket) cell holds ~1.6 messages, while a
        (site, TTB bucket) cell holds ~100.  Accounting and FIFO state
        stay exact per channel; only the per-channel ``delivered_count``
        diagnostic is lumped onto the first contributing channel of a
        merged entry (network-wide totals are unchanged).

        Intra-node buckets (per (site, kind), no wire and no
        accounting) are handed straight to the destination's DGC sinks
        from inside the flush event — the flush instant *is* their
        delivery instant, so they never touch the pulse at all.  Both
        accumulators are detached before anything runs: the local
        deliveries execute collector code that may send fresh DGC
        traffic, which lands in the next bucket.

        Streams flush in accumulation order (insertion-ordered dicts) —
        deterministic.  A flush that finds the accumulators drained
        stops the beat; the next DGC send re-arms it."""
        acc = self._relaxed_acc
        local = self._relaxed_local_acc
        if not acc and not local:
            beat = self._relaxed_beat
            if beat is not None:
                beat.stop()
                self._relaxed_beat = None
            return
        if acc:
            self._relaxed_acc = {}
            self._flush_relaxed_cross(acc)
        if local:
            self._relaxed_local_acc = {}
            self._flush_relaxed_local(local)

    def _flush_relaxed_cross(self, acc: Dict[tuple, list]) -> None:
        accountant = self.accountant
        fault_plan = self.fault_plan
        groups: Dict[tuple, list] = {}
        for (channel, kind), box in acc.items():
            dest = box[0]
            size_bytes = box[1]
            targets = box[2]
            count = len(targets)
            if channel._delay_rules and fault_plan.may_delay(
                channel.source, dest, kind
            ):
                # Delay rules attached after accumulation began:
                # deliver each constituent with per-envelope latency
                # semantics (accounted by ``send`` itself).
                messages = box[3]
                for index in range(count):
                    self.send(
                        Envelope(
                            channel.source, dest, kind, size_bytes,
                            (targets[index], messages[index]), _drop_payload,
                        )
                    )
                continue
            delivery_time = channel.stage_send_n(count)
            accountant.observe_run(kind, size_bytes, channel.pair, count)
            group = groups.get((delivery_time, dest, kind))
            if group is None:
                # Repurpose the box: slot 1 becomes the representative
                # channel (the entry needs one for delivery bookkeeping).
                box[1] = channel
                groups[(delivery_time, dest, kind)] = box
            else:
                group[2].extend(targets)
                group[3].extend(box[3])
                self.aggregated_message_count += count
        for (delivery_time, dest, kind), box in groups.items():
            targets = box[2]
            if len(targets) == 1:
                self._stage(
                    delivery_time,
                    (box[1], None, dest, kind, targets[0], box[3][0]),
                )
            else:
                agg_kind = (
                    _AGG_DGC_MESSAGE
                    if kind == KIND_DGC_MESSAGE
                    else _AGG_DGC_RESPONSE
                )
                self._stage(
                    delivery_time,
                    (box[1], None, dest, agg_kind, targets, box[3]),
                )
            self.relaxed_flush_count += 1

    def _flush_relaxed_local(self, local: Dict[tuple, list]) -> None:
        """Deliver the intra-node buckets synchronously, in accumulation
        order: one single-sink call for a lone message, one batch-sink
        column loop otherwise.  Sinks are resolved at delivery time so a
        destination that vanished mid-bucket drops its messages, exactly
        like :meth:`_dispatch`."""
        msg_single_get = self._dgc_message_sinks.get
        resp_single_get = self._dgc_response_sinks.get
        msg_batch_get = self._dgc_message_batch_sinks.get
        resp_batch_get = self._dgc_response_batch_sinks.get
        fault_plan = self.fault_plan
        for (dest, kind), box in local.items():
            targets = box[0]
            is_message = kind == KIND_DGC_MESSAGE
            if len(targets) == 1:
                handler = (
                    msg_single_get(dest) if is_message
                    else resp_single_get(dest)
                )
                if handler is None:
                    fault_plan.dropped_count += 1
                else:
                    handler(targets[0], box[1][0])
            else:
                handler = (
                    msg_batch_get(dest) if is_message
                    else resp_batch_get(dest)
                )
                if handler is None:
                    fault_plan.dropped_count += len(targets)
                else:
                    handler(targets, box[1])
            self.relaxed_flush_count += 1

    def _fire_pulse(self, delivery_time: float) -> None:
        """Deliver every entry staged for ``delivery_time``, in stage
        (i.e. send) order — the per-entry baseline loop.

        Local entries carry their resolved sink; cross-node ones
        re-resolve the destination at delivery, like ``_dispatch``.
        """
        entries = self._pulses.pop(delivery_time)
        self.staged_entry_count += len(entries)
        permuter = self.pulse_permuter
        if permuter is not None:
            entries = permuter(delivery_time, entries)
        typed_sinks = self._typed_sinks
        for channel, sink, dest, kind, item, payload in entries:
            if channel is not None:
                channel.delivered_count += 1
            if kind is None:
                if channel is None:
                    sink(item)
                else:
                    self._dispatch(item)
                continue
            if channel is not None:
                sink = typed_sinks.get(dest)
                if sink is None:
                    self.fault_plan.dropped_count += 1
                    continue
            sink(kind, item, payload)

    def _fire_pulse_columnar(self, delivery_time: float) -> None:
        """Deliver every entry staged for ``delivery_time``, in stage
        (i.e. send) order, then recycle the pulse record — the
        aggregated core's loop.

        One tight loop with every per-entry lookup bound to a local:
        aggregate entries cost one batch-sink call per *run* (the
        destination loops the flat columns itself), plain DGC entries
        dispatch straight to their single-message lane (no typed-sink
        kind dispatch), and everything else behaves exactly as the
        per-entry loop.  Handlers running inside the loop may stage new
        traffic freely — even for this same instant — because the record
        was detached from ``_pulses`` before the loop and only recycled
        after it.
        """
        entries = self._pulses.pop(delivery_time)
        if delivery_time == self._last_pulse_time:
            # Detach the staging memo: a send staged after this fire at
            # the very same instant must open a fresh pulse.
            self._last_pulse_time = -1.0
        self.staged_entry_count += len(entries)
        permuter = self.pulse_permuter
        if permuter is not None:
            entries = permuter(delivery_time, entries)
        typed_get = self._typed_sinks.get
        msg_batch_get = self._dgc_message_batch_sinks.get
        resp_batch_get = self._dgc_response_batch_sinks.get
        msg_single_get = self._dgc_message_sinks.get
        resp_single_get = self._dgc_response_sinks.get
        dispatch = self._dispatch
        fault_plan = self.fault_plan
        # Branches ordered by frequency at scale: single DGC entries
        # dominate, then aggregate runs, then app/registry typed
        # traffic, then envelopes.
        for channel, sink, dest, kind, item, payload in entries:
            if kind is KIND_DGC_MESSAGE and channel is not None:
                channel.delivered_count += 1
                handler = msg_single_get(dest)
                if handler is not None:
                    handler(item, payload)
                    continue
            elif kind is KIND_DGC_RESPONSE and channel is not None:
                channel.delivered_count += 1
                handler = resp_single_get(dest)
                if handler is not None:
                    handler(item, payload)
                    continue
            elif kind is _AGG_DGC_MESSAGE:
                channel.delivered_count += len(item)
                handler = msg_batch_get(dest)
                if handler is None:
                    fault_plan.dropped_count += len(item)
                else:
                    handler(item, payload)
                continue
            elif kind is _AGG_DGC_RESPONSE:
                channel.delivered_count += len(item)
                handler = resp_batch_get(dest)
                if handler is None:
                    fault_plan.dropped_count += len(item)
                else:
                    handler(item, payload)
                continue
            elif kind is None:
                if channel is None:
                    sink(item)
                else:
                    channel.delivered_count += 1
                    dispatch(item)
                continue
            elif channel is None:
                # Typed intra-node: ``sink`` is the resolved typed sink.
                sink(kind, item, payload)
                continue
            else:
                channel.delivered_count += 1
            handler = typed_get(dest)
            if handler is None:
                fault_plan.dropped_count += 1
            else:
                handler(kind, item, payload)
        entries.clear()
        pool = self._pulse_pool
        if len(pool) < _PULSE_POOL_CAP:
            pool.append(entries)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _build_route(
        self, source: str, dest: str
    ) -> Tuple[Callable[[Envelope], None], Optional[FifoChannel], bool]:
        """Resolve and cache ``(sink, channel, dgc_fast)`` for a pair.

        ``dgc_fast`` precomputes the fused-DGC-lane eligibility checks
        that cannot change while the route cache is valid (constant
        latency, typed and DGC sinks registered); the cache is cleared
        on every registration.  Fault-plan delay rules are the one live
        condition and stay checked per send.
        """
        sink = self._sinks.get(dest)
        if sink is None:
            egress_nodes = self._egress_nodes
            if egress_nodes is not None and dest in egress_nodes:
                # Shard-remote destination: no sink (the node lives in
                # another process), a real sender-side channel (FIFO
                # clamp + accounting happen here), never dgc_fast (the
                # fused lane's tail-merge targets the local pulse; runs
                # take the dedicated egress branch instead).
                route = (None, self._channel(source, dest), False)
                self._routes.setdefault(source, {})[dest] = route
                return route
            raise UnknownDestinationError(f"node {dest!r} is not registered")
        channel = None if source == dest else self._channel(source, dest)
        dgc_fast = (
            channel is not None
            and channel._base_latency is not None
            and dest in self._typed_sinks
            and dest in self._dgc_message_batch_sinks
            and dest in self._dgc_response_batch_sinks
        )
        route = (sink, channel, dgc_fast)
        self._routes.setdefault(source, {})[dest] = route
        return route

    def _deliver_local(
        self, envelope: Envelope, sink: Callable[[Envelope], None]
    ) -> None:
        sink(envelope)

    def _dispatch(self, envelope: Envelope) -> None:
        sink = self._sinks.get(envelope.dest_node)
        if sink is None:
            # Destination vanished mid-flight (node shut down): drop.
            self.fault_plan.dropped_count += 1
            return
        sink(envelope)

    def _channel(self, source: str, dest: str) -> FifoChannel:
        key = (source, dest)
        channel = self._channels.get(key)
        if channel is None:
            # The topology lookup (two site resolutions) is constant per
            # node pair, so it runs once at channel creation; the channel
            # falls back to ``_latency`` only while delay rules exist.
            channel = FifoChannel(
                self._kernel,
                source,
                dest,
                self._latency,
                base_latency=self._topology.one_way_latency(source, dest),
                delay_rules=self.fault_plan._delay_rules,
            )
            self._channels[key] = channel
        return channel

    def _latency(self, envelope: Envelope) -> float:
        base = self._topology.one_way_latency(
            envelope.source_node, envelope.dest_node
        )
        return base + self.fault_plan.extra_delay(envelope, self._kernel.now)
