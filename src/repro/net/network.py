"""The network fabric: routes envelopes between nodes.

Responsibilities:

* keep one :class:`FifoChannel` per ordered node pair (lazily created),
* apply the latency model from the :class:`Topology` plus any fault-plan
  extra delays,
* short-circuit intra-node messages (delivered at the same simulated time,
  bypassing the accountant — paper Sec. 5: intra-JVM messages are passed
  by reference and not accounted),
* feed every cross-node envelope to the :class:`BandwidthAccountant`,
* in *pulse-batched* mode (the beat wheel's companion), coalesce every
  delivery sharing an exact delivery instant into one kernel event.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import UnknownDestinationError
from repro.net.accounting import BandwidthAccountant
from repro.net.channel import FifoChannel
from repro.net.faults import FaultPlan
from repro.net.message import Envelope
from repro.net.topology import Topology
from repro.sim.kernel import SimKernel


def _drop_payload(payload: Any) -> None:
    """Shared no-op :attr:`Envelope.deliver` for fallback DGC envelopes
    (dispatch happens through node sinks)."""


class Network:
    """Connects registered node sinks through FIFO channels."""

    def __init__(
        self,
        kernel: SimKernel,
        topology: Topology,
        *,
        accountant: Optional[BandwidthAccountant] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self._kernel = kernel
        self._topology = topology
        self.accountant = accountant if accountant is not None else BandwidthAccountant()
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        self._sinks: Dict[str, Callable[[Envelope], None]] = {}
        self._channels: Dict[Tuple[str, str], FifoChannel] = {}
        #: Per-node DGC dispatchers ``(kind, activity_id, payload) ->
        #: None``, used by the pulse-batched beat fan-out to skip the
        #: per-message :class:`Envelope`.
        self._dgc_sinks: Dict[str, Callable[[str, Any, Any], None]] = {}
        #: When true (the beat wheel is active), *all* deliveries are
        #: pulse-batched: every send staged for the same delivery
        #: instant shares one kernel event, so a beat bucket's whole
        #: fan-out costs O(distinct delivery times) heap traffic instead
        #: of O(messages).  Delivery times (per-channel latency plus the
        #: FIFO clamp), accounting, partition drops and per-channel
        #: counters are computed exactly as on the per-event path, and
        #: entries fire in stage order — which is send order, also
        #: *across* traffic kinds, so per-channel FIFO (paper Sec. 3.2)
        #: is preserved by construction and fixed-seed outcomes are
        #: bit-identical with per-event delivery.
        self.pulse_batching = False
        self._pulses: Dict[float, list] = {}
        #: Hot-path cache: source -> dest -> (sink, channel-or-None).
        #: ``None`` channel means intra-node delivery.  Two nested
        #: string-keyed dicts avoid building a key tuple per envelope.
        #: Nodes only ever register (there is no unregister), so entries
        #: never go stale; the cache is cleared on registration anyway
        #: for hygiene.
        self._routes: Dict[
            str,
            Dict[str, Tuple[Callable[[Envelope], None], Optional[FifoChannel]]],
        ] = {}

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def kernel(self) -> SimKernel:
        return self._kernel

    def register_node(
        self,
        node: str,
        sink: Callable[[Envelope], None],
        dgc_sink: Optional[Callable[[str, Any, Any], None]] = None,
    ) -> None:
        """Attach a node's receive dispatcher to the fabric.

        ``dgc_sink`` is the envelope-free entry point for pulse-batched
        DGC traffic; nodes that do not provide one fall back to the
        per-envelope path even when batching is enabled.
        """
        self._sinks[node] = sink
        if dgc_sink is not None:
            self._dgc_sinks[node] = dgc_sink
        self._routes.clear()

    def max_comm(self) -> float:
        """Upper bound on one-way communication time (MaxComm, Sec. 3.1)."""
        return self._topology.max_one_way_latency()

    def send(self, envelope: Envelope) -> None:
        """Route ``envelope`` to its destination node.

        The (sink, channel) pair per node pair is cached so the hot path
        pays one dict probe instead of sink lookup + channel lookup per
        envelope.  Cross-node deliveries still go through ``_dispatch``
        (a delivery-time sink lookup) so a destination that vanishes
        mid-flight drops the envelope, as the fault model requires.

        In pulse-batched mode the envelope is staged by delivery instant
        instead of getting its own kernel event; everything else —
        times, accounting, counters, per-channel order — is unchanged.
        """
        source = envelope.source_node
        dest = envelope.dest_node
        by_dest = self._routes.get(source)
        route = by_dest.get(dest) if by_dest is not None else None
        if route is None:
            route = self._build_route(source, dest)
        # Read through fault_plan each time (it is a public attribute and
        # may be replaced); the set's truthiness is the zero-cost guard.
        fault_plan = self.fault_plan
        if fault_plan._partitioned and fault_plan.is_partitioned(source, dest):
            fault_plan.dropped_count += 1
            return
        sink, channel = route
        if channel is None:
            # Intra-node: delivered immediately (same tick), not accounted.
            if self.pulse_batching:
                envelope.sent_at = self._kernel.now
                self._stage(self._kernel.now,
                            (None, sink, dest, None, envelope, None))
                return
            self._kernel.schedule_fire_at(
                self._kernel.now, self._deliver_local, (envelope, sink)
            )
            return
        self.accountant.observe_sized(
            envelope.kind, envelope.size_bytes, channel.pair
        )
        if (
            self.pulse_batching
            and channel._base_latency is not None
            and not channel._delay_rules
        ):
            envelope.sent_at = self._kernel.now
            self._stage(channel.stage_send(),
                        (channel, None, dest, None, envelope, None))
            return
        channel.send(envelope, self._dispatch)

    def send_dgc(
        self,
        source: str,
        dest: str,
        kind: str,
        size_bytes: int,
        activity_id: Any,
        payload: Any,
    ) -> None:
        """Pulse-batched, envelope-free DGC send: stage ``payload`` for
        its exact per-envelope delivery instant; all traffic sharing
        that instant rides one kernel event.

        The delivery time is computed by the channel itself
        (:meth:`FifoChannel.stage_send` — constant latency, FIFO clamp,
        send counter), and accounting and partition drops match
        :meth:`send`, so the batching changes heap traffic, never
        simulation outcomes.  Channels with fault-plan delay rules fall
        back to the per-envelope path (their latency is per-message).
        """
        by_dest = self._routes.get(source)
        route = by_dest.get(dest) if by_dest is not None else None
        if route is None:
            route = self._build_route(source, dest)
        fault_plan = self.fault_plan
        if fault_plan._partitioned and fault_plan.is_partitioned(source, dest):
            fault_plan.dropped_count += 1
            return
        sink, channel = route
        if channel is None:
            # Intra-node: delivered at the current instant, unaccounted.
            dgc_sink = self._dgc_sinks.get(dest)
            if dgc_sink is None:
                self.send(
                    Envelope(source, dest, kind, size_bytes,
                             (activity_id, payload), _drop_payload)
                )
                return
            delivery_time = self._kernel.now
        else:
            if (
                channel._base_latency is None
                or channel._delay_rules
                or dest not in self._dgc_sinks
            ):
                # Variable latency (the pulse cannot share instants
                # meaningfully) or an envelope-only destination: keep
                # the per-envelope path's semantics.
                self.send(
                    Envelope(source, dest, kind, size_bytes,
                             (activity_id, payload), _drop_payload)
                )
                return
            delivery_time = channel.stage_send()
            self.accountant.observe_sized(kind, size_bytes, channel.pair)
            # Cross-node: resolved again at delivery so a node that
            # vanishes mid-flight drops the entry (mirrors _dispatch).
            dgc_sink = None
        self._stage(
            delivery_time,
            (channel, dgc_sink, dest, kind, activity_id, payload),
        )

    def _stage(self, delivery_time: float, entry: tuple) -> None:
        """Append one delivery to the pulse for ``delivery_time``,
        creating its (single) kernel event on first use."""
        pulses = self._pulses
        batch = pulses.get(delivery_time)
        if batch is None:
            pulses[delivery_time] = batch = []
            self._kernel.schedule_fire_at(
                delivery_time, self._fire_pulse, (delivery_time,)
            )
        batch.append(entry)

    def _fire_pulse(self, delivery_time: float) -> None:
        """Deliver every entry staged for ``delivery_time``, in stage
        (i.e. send) order."""
        entries = self._pulses.pop(delivery_time)
        dgc_sinks = self._dgc_sinks
        for channel, sink, dest, kind, item, payload in entries:
            if channel is not None:
                channel.delivered_count += 1
            if kind is None:
                # An application envelope (``item``): local entries
                # carry their cached node sink, cross-node ones re-check
                # the destination like ``_dispatch``.
                if channel is None:
                    sink(item)
                else:
                    self._dispatch(item)
                continue
            if channel is not None:
                sink = dgc_sinks.get(dest)
                if sink is None:
                    self.fault_plan.dropped_count += 1
                    continue
            sink(kind, item, payload)

    def _build_route(
        self, source: str, dest: str
    ) -> Tuple[Callable[[Envelope], None], Optional[FifoChannel]]:
        sink = self._sinks.get(dest)
        if sink is None:
            raise UnknownDestinationError(f"node {dest!r} is not registered")
        channel = None if source == dest else self._channel(source, dest)
        route = (sink, channel)
        self._routes.setdefault(source, {})[dest] = route
        return route

    def _deliver_local(
        self, envelope: Envelope, sink: Callable[[Envelope], None]
    ) -> None:
        sink(envelope)

    def _dispatch(self, envelope: Envelope) -> None:
        sink = self._sinks.get(envelope.dest_node)
        if sink is None:
            # Destination vanished mid-flight (node shut down): drop.
            self.fault_plan.dropped_count += 1
            return
        sink(envelope)

    def _channel(self, source: str, dest: str) -> FifoChannel:
        key = (source, dest)
        channel = self._channels.get(key)
        if channel is None:
            # The topology lookup (two site resolutions) is constant per
            # node pair, so it runs once at channel creation; the channel
            # falls back to ``_latency`` only while delay rules exist.
            channel = FifoChannel(
                self._kernel,
                source,
                dest,
                self._latency,
                base_latency=self._topology.one_way_latency(source, dest),
                delay_rules=self.fault_plan._delay_rules,
            )
            self._channels[key] = channel
        return channel

    def _latency(self, envelope: Envelope) -> float:
        base = self._topology.one_way_latency(
            envelope.source_node, envelope.dest_node
        )
        return base + self.fault_plan.extra_delay(envelope, self._kernel.now)
