"""The network fabric: routes envelopes between nodes.

Responsibilities:

* keep one :class:`FifoChannel` per ordered node pair (lazily created),
* apply the latency model from the :class:`Topology` plus any fault-plan
  extra delays,
* short-circuit intra-node messages (delivered at the same simulated time,
  bypassing the accountant — paper Sec. 5: intra-JVM messages are passed
  by reference and not accounted),
* feed every cross-node envelope to the :class:`BandwidthAccountant`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import UnknownDestinationError
from repro.net.accounting import BandwidthAccountant
from repro.net.channel import FifoChannel
from repro.net.faults import FaultPlan
from repro.net.message import Envelope
from repro.net.topology import Topology
from repro.sim.kernel import SimKernel


class Network:
    """Connects registered node sinks through FIFO channels."""

    def __init__(
        self,
        kernel: SimKernel,
        topology: Topology,
        *,
        accountant: Optional[BandwidthAccountant] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self._kernel = kernel
        self._topology = topology
        self.accountant = accountant if accountant is not None else BandwidthAccountant()
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        self._sinks: Dict[str, Callable[[Envelope], None]] = {}
        self._channels: Dict[Tuple[str, str], FifoChannel] = {}

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def kernel(self) -> SimKernel:
        return self._kernel

    def register_node(self, node: str, sink: Callable[[Envelope], None]) -> None:
        """Attach a node's receive dispatcher to the fabric."""
        self._sinks[node] = sink

    def max_comm(self) -> float:
        """Upper bound on one-way communication time (MaxComm, Sec. 3.1)."""
        return self._topology.max_one_way_latency()

    def send(self, envelope: Envelope) -> None:
        """Route ``envelope`` to its destination node."""
        sink = self._sinks.get(envelope.dest_node)
        if sink is None:
            raise UnknownDestinationError(
                f"node {envelope.dest_node!r} is not registered"
            )
        if self.fault_plan.is_partitioned(envelope.source_node, envelope.dest_node):
            self.fault_plan.dropped_count += 1
            return
        if envelope.source_node == envelope.dest_node:
            # Intra-node: delivered immediately (same tick), not accounted.
            self._kernel.schedule(
                0.0, self._deliver_local, envelope, sink, label="deliver:local"
            )
            return
        self.accountant.observe(envelope)
        channel = self._channel(envelope.source_node, envelope.dest_node)
        channel.send(envelope, self._dispatch)

    def _deliver_local(
        self, envelope: Envelope, sink: Callable[[Envelope], None]
    ) -> None:
        sink(envelope)

    def _dispatch(self, envelope: Envelope) -> None:
        sink = self._sinks.get(envelope.dest_node)
        if sink is None:
            # Destination vanished mid-flight (node shut down): drop.
            self.fault_plan.dropped_count += 1
            return
        sink(envelope)

    def _channel(self, source: str, dest: str) -> FifoChannel:
        key = (source, dest)
        channel = self._channels.get(key)
        if channel is None:
            channel = FifoChannel(self._kernel, source, dest, self._latency)
            self._channels[key] = channel
        return channel

    def _latency(self, envelope: Envelope) -> float:
        base = self._topology.one_way_latency(
            envelope.source_node, envelope.dest_node
        )
        return base + self.fault_plan.extra_delay(envelope, self._kernel.now)
