"""The network fabric: routes traffic between nodes.

Responsibilities:

* keep one :class:`FifoChannel` per ordered node pair (lazily created),
* apply the latency model from the :class:`Topology` plus any fault-plan
  extra delays,
* short-circuit intra-node messages (delivered at the same simulated time,
  bypassing the accountant — paper Sec. 5: intra-JVM messages are passed
  by reference and not accounted),
* feed every cross-node message to the :class:`BandwidthAccountant`,
* in *pulse-batched* mode (the beat wheel's companion), coalesce every
  delivery sharing an exact delivery instant into one kernel event.

The fabric carries two message forms over one staged transport:

* **typed** (:meth:`Network.send_typed`) — the primary, allocation-light
  form: ``(kind, item, payload)`` staged directly into the pulse for its
  delivery instant and dispatched through the destination node's typed
  sink.  Every traffic kind — app requests, future replies, registry
  lookups and DGC protocol messages — rides this path; no per-message
  :class:`Envelope` is allocated.
* **envelope** (:meth:`Network.send`) — the per-event baseline and
  compatibility form: one :class:`Envelope` per transmission, one kernel
  event per delivery when batching is off.  ``send_typed`` falls back to
  it whenever pulse semantics cannot hold (variable per-message latency
  from fault-plan delay rules, destinations without a typed sink, or
  batching disabled), so fixed-seed runs are bit-identical between the
  two delivery modes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import UnknownDestinationError
from repro.net.accounting import BandwidthAccountant
from repro.net.channel import FifoChannel
from repro.net.faults import FaultPlan
from repro.net.message import PAIRED_PAYLOAD_KINDS, Envelope
from repro.net.topology import Topology
from repro.sim.kernel import SimKernel


def _drop_payload(payload: Any) -> None:
    """Shared no-op :attr:`Envelope.deliver` for fallback typed envelopes
    (dispatch happens through node sinks)."""


class Network:
    """Connects registered node sinks through FIFO channels."""

    def __init__(
        self,
        kernel: SimKernel,
        topology: Topology,
        *,
        accountant: Optional[BandwidthAccountant] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self._kernel = kernel
        self._topology = topology
        self.accountant = accountant if accountant is not None else BandwidthAccountant()
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        self._sinks: Dict[str, Callable[[Envelope], None]] = {}
        self._channels: Dict[Tuple[str, str], FifoChannel] = {}
        #: Per-node typed dispatchers ``(kind, item, payload) -> None``:
        #: the envelope-free receive path of the unified fabric, one sink
        #: per node for *all* traffic kinds.
        self._typed_sinks: Dict[str, Callable[[str, Any, Any], None]] = {}
        #: When true (the beat wheel is active), *all* deliveries are
        #: pulse-batched: every send staged for the same delivery
        #: instant shares one kernel event, so a beat bucket's whole
        #: fan-out — and an NAS iteration's whole exchange wave — costs
        #: O(distinct delivery times) heap traffic instead of
        #: O(messages).  Delivery times (per-channel latency plus the
        #: FIFO clamp), accounting, partition drops and per-channel
        #: counters are computed exactly as on the per-event path, and
        #: entries fire in stage order — which is send order, also
        #: *across* traffic kinds, so per-channel FIFO (paper Sec. 3.2)
        #: is preserved by construction and fixed-seed outcomes are
        #: bit-identical with per-event delivery.
        self.pulse_batching = False
        self._pulses: Dict[float, list] = {}
        #: Kernel events created on behalf of pulses; with
        #: ``sent_count`` sums this is the fabric's batching ratio.
        self.pulse_event_count = 0
        #: Hot-path cache: source -> dest -> (sink, channel-or-None).
        #: ``None`` channel means intra-node delivery.  Two nested
        #: string-keyed dicts avoid building a key tuple per message.
        #: Nodes only ever register (there is no unregister), so entries
        #: never go stale; the cache is cleared on registration anyway
        #: for hygiene.
        self._routes: Dict[
            str,
            Dict[str, Tuple[Callable[[Envelope], None], Optional[FifoChannel]]],
        ] = {}

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def kernel(self) -> SimKernel:
        return self._kernel

    def register_node(
        self,
        node: str,
        sink: Callable[[Envelope], None],
        typed_sink: Optional[Callable[[str, Any, Any], None]] = None,
    ) -> None:
        """Attach a node's receive dispatchers to the fabric.

        ``typed_sink`` is the envelope-free entry point for pulse-batched
        traffic of every kind; nodes that do not provide one fall back to
        the per-envelope path even when batching is enabled.
        """
        self._sinks[node] = sink
        if typed_sink is not None:
            self._typed_sinks[node] = typed_sink
        self._routes.clear()

    def max_comm(self) -> float:
        """Upper bound on one-way communication time (MaxComm, Sec. 3.1)."""
        return self._topology.max_one_way_latency()

    def send_typed(
        self,
        source: str,
        dest: str,
        kind: str,
        size_bytes: int,
        item: Any,
        payload: Any = None,
    ) -> None:
        """Route one typed message — the unified, allocation-light send
        path every traffic kind goes through.

        In pulse-batched mode the message is staged for its exact
        per-envelope delivery instant (computed by the channel itself:
        constant latency, FIFO clamp, send counter — see
        :meth:`FifoChannel.stage_send`); all traffic sharing that instant
        rides one kernel event and no :class:`Envelope` is allocated.
        Accounting and partition drops match :meth:`send`, so batching
        changes heap traffic and allocations, never simulation outcomes.

        Falls back to the per-envelope path whenever pulse semantics
        cannot hold: batching disabled (the per-event baseline), channels
        with fault-plan delay rules (their latency is per-message), or
        an envelope-only destination.
        """
        if not self.pulse_batching:
            self.send(
                Envelope(source, dest, kind, size_bytes,
                         self._envelope_payload(kind, item, payload),
                         _drop_payload)
            )
            return
        by_dest = self._routes.get(source)
        route = by_dest.get(dest) if by_dest is not None else None
        if route is None:
            route = self._build_route(source, dest)
        fault_plan = self.fault_plan
        if fault_plan._partitioned and fault_plan.is_partitioned(source, dest):
            fault_plan.dropped_count += 1
            return
        channel = route[1]
        if channel is None:
            # Intra-node: delivered at the current instant, unaccounted.
            typed_sink = self._typed_sinks.get(dest)
            if typed_sink is None:
                self.send(
                    Envelope(source, dest, kind, size_bytes,
                             self._envelope_payload(kind, item, payload),
                             _drop_payload)
                )
                return
            delivery_time = self._kernel.now
        else:
            if (
                channel._base_latency is None
                or channel._delay_rules
                or dest not in self._typed_sinks
            ):
                # Variable latency (the pulse cannot share instants
                # meaningfully) or an envelope-only destination: keep
                # the per-envelope path's semantics.
                self.send(
                    Envelope(source, dest, kind, size_bytes,
                             self._envelope_payload(kind, item, payload),
                             _drop_payload)
                )
                return
            delivery_time = channel.stage_send()
            self.accountant.observe_sized(kind, size_bytes, channel.pair)
            # Cross-node: resolved again at delivery so a node that
            # vanishes mid-flight drops the entry (mirrors _dispatch).
            typed_sink = None
        self._stage(
            delivery_time,
            (channel, typed_sink, dest, kind, item, payload),
        )

    @staticmethod
    def _envelope_payload(kind: str, item: Any, payload: Any) -> Any:
        """The legacy :class:`Envelope` payload shape for a typed
        message: a pair for the paired kinds (DGC), the bare item
        otherwise."""
        if kind in PAIRED_PAYLOAD_KINDS:
            return (item, payload)
        return item

    def send(self, envelope: Envelope) -> None:
        """Route a pre-built ``envelope`` to its destination node — the
        per-event baseline and the fallback for traffic that cannot ride
        the pulse.

        The (sink, channel) pair per node pair is cached so the hot path
        pays one dict probe instead of sink lookup + channel lookup per
        envelope.  Cross-node deliveries still go through ``_dispatch``
        (a delivery-time sink lookup) so a destination that vanishes
        mid-flight drops the envelope, as the fault model requires.

        In pulse-batched mode the envelope is staged by delivery instant
        instead of getting its own kernel event; everything else —
        times, accounting, counters, per-channel order — is unchanged.
        """
        source = envelope.source_node
        dest = envelope.dest_node
        by_dest = self._routes.get(source)
        route = by_dest.get(dest) if by_dest is not None else None
        if route is None:
            route = self._build_route(source, dest)
        # Read through fault_plan each time (it is a public attribute and
        # may be replaced); the set's truthiness is the zero-cost guard.
        fault_plan = self.fault_plan
        if fault_plan._partitioned and fault_plan.is_partitioned(source, dest):
            fault_plan.dropped_count += 1
            return
        sink, channel = route
        if channel is None:
            # Intra-node: delivered immediately (same tick), not accounted.
            if self.pulse_batching:
                envelope.sent_at = self._kernel.now
                self._stage(self._kernel.now,
                            (None, sink, dest, None, envelope, None))
                return
            self._kernel.schedule_fire_at(
                self._kernel.now, self._deliver_local, (envelope, sink)
            )
            return
        self.accountant.observe_sized(
            envelope.kind, envelope.size_bytes, channel.pair
        )
        if (
            self.pulse_batching
            and channel._base_latency is not None
            and not channel._delay_rules
        ):
            envelope.sent_at = self._kernel.now
            self._stage(channel.stage_send(),
                        (channel, None, dest, None, envelope, None))
            return
        channel.send(envelope, self._dispatch)

    def _stage(self, delivery_time: float, entry: tuple) -> None:
        """Append one delivery to the pulse for ``delivery_time``,
        creating its (single) kernel event on first use."""
        pulses = self._pulses
        batch = pulses.get(delivery_time)
        if batch is None:
            pulses[delivery_time] = batch = []
            self._kernel.schedule_fire_at(
                delivery_time, self._fire_pulse, (delivery_time,)
            )
            self.pulse_event_count += 1
        batch.append(entry)

    def _fire_pulse(self, delivery_time: float) -> None:
        """Deliver every entry staged for ``delivery_time``, in stage
        (i.e. send) order.

        Entry layout is uniform across message forms:
        ``(channel, sink, dest, kind, item, payload)`` — ``kind`` is
        ``None`` for envelope entries (``item`` is the envelope), a
        traffic-kind constant for typed ones.  Local entries carry their
        resolved sink; cross-node ones re-resolve the destination at
        delivery, like ``_dispatch``.
        """
        entries = self._pulses.pop(delivery_time)
        typed_sinks = self._typed_sinks
        for channel, sink, dest, kind, item, payload in entries:
            if channel is not None:
                channel.delivered_count += 1
            if kind is None:
                if channel is None:
                    sink(item)
                else:
                    self._dispatch(item)
                continue
            if channel is not None:
                sink = typed_sinks.get(dest)
                if sink is None:
                    self.fault_plan.dropped_count += 1
                    continue
            sink(kind, item, payload)

    def _build_route(
        self, source: str, dest: str
    ) -> Tuple[Callable[[Envelope], None], Optional[FifoChannel]]:
        sink = self._sinks.get(dest)
        if sink is None:
            raise UnknownDestinationError(f"node {dest!r} is not registered")
        channel = None if source == dest else self._channel(source, dest)
        route = (sink, channel)
        self._routes.setdefault(source, {})[dest] = route
        return route

    def _deliver_local(
        self, envelope: Envelope, sink: Callable[[Envelope], None]
    ) -> None:
        sink(envelope)

    def _dispatch(self, envelope: Envelope) -> None:
        sink = self._sinks.get(envelope.dest_node)
        if sink is None:
            # Destination vanished mid-flight (node shut down): drop.
            self.fault_plan.dropped_count += 1
            return
        sink(envelope)

    def _channel(self, source: str, dest: str) -> FifoChannel:
        key = (source, dest)
        channel = self._channels.get(key)
        if channel is None:
            # The topology lookup (two site resolutions) is constant per
            # node pair, so it runs once at channel creation; the channel
            # falls back to ``_latency`` only while delay rules exist.
            channel = FifoChannel(
                self._kernel,
                source,
                dest,
                self._latency,
                base_latency=self._topology.one_way_latency(source, dest),
                delay_rules=self.fault_plan._delay_rules,
            )
            self._channels[key] = channel
        return channel

    def _latency(self, envelope: Envelope) -> float:
        base = self._topology.one_way_latency(
            envelope.source_node, envelope.dest_node
        )
        return base + self.fault_plan.extra_delay(envelope, self._kernel.now)
