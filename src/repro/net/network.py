"""The network fabric: routes envelopes between nodes.

Responsibilities:

* keep one :class:`FifoChannel` per ordered node pair (lazily created),
* apply the latency model from the :class:`Topology` plus any fault-plan
  extra delays,
* short-circuit intra-node messages (delivered at the same simulated time,
  bypassing the accountant — paper Sec. 5: intra-JVM messages are passed
  by reference and not accounted),
* feed every cross-node envelope to the :class:`BandwidthAccountant`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import UnknownDestinationError
from repro.net.accounting import BandwidthAccountant
from repro.net.channel import FifoChannel
from repro.net.faults import FaultPlan
from repro.net.message import Envelope
from repro.net.topology import Topology
from repro.sim.kernel import SimKernel


class Network:
    """Connects registered node sinks through FIFO channels."""

    def __init__(
        self,
        kernel: SimKernel,
        topology: Topology,
        *,
        accountant: Optional[BandwidthAccountant] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self._kernel = kernel
        self._topology = topology
        self.accountant = accountant if accountant is not None else BandwidthAccountant()
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        self._sinks: Dict[str, Callable[[Envelope], None]] = {}
        self._channels: Dict[Tuple[str, str], FifoChannel] = {}
        #: Hot-path cache: source -> dest -> (sink, channel-or-None).
        #: ``None`` channel means intra-node delivery.  Two nested
        #: string-keyed dicts avoid building a key tuple per envelope.
        #: Nodes only ever register (there is no unregister), so entries
        #: never go stale; the cache is cleared on registration anyway
        #: for hygiene.
        self._routes: Dict[
            str,
            Dict[str, Tuple[Callable[[Envelope], None], Optional[FifoChannel]]],
        ] = {}

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def kernel(self) -> SimKernel:
        return self._kernel

    def register_node(self, node: str, sink: Callable[[Envelope], None]) -> None:
        """Attach a node's receive dispatcher to the fabric."""
        self._sinks[node] = sink
        self._routes.clear()

    def max_comm(self) -> float:
        """Upper bound on one-way communication time (MaxComm, Sec. 3.1)."""
        return self._topology.max_one_way_latency()

    def send(self, envelope: Envelope) -> None:
        """Route ``envelope`` to its destination node.

        The (sink, channel) pair per node pair is cached so the hot path
        pays one dict probe instead of sink lookup + channel lookup per
        envelope.  Cross-node deliveries still go through ``_dispatch``
        (a delivery-time sink lookup) so a destination that vanishes
        mid-flight drops the envelope, as the fault model requires.
        """
        source = envelope.source_node
        dest = envelope.dest_node
        by_dest = self._routes.get(source)
        route = by_dest.get(dest) if by_dest is not None else None
        if route is None:
            route = self._build_route(source, dest)
        # Read through fault_plan each time (it is a public attribute and
        # may be replaced); the set's truthiness is the zero-cost guard.
        fault_plan = self.fault_plan
        if fault_plan._partitioned and fault_plan.is_partitioned(source, dest):
            fault_plan.dropped_count += 1
            return
        sink, channel = route
        if channel is None:
            # Intra-node: delivered immediately (same tick), not accounted.
            self._kernel.schedule_fire_at(
                self._kernel.now, self._deliver_local, (envelope, sink)
            )
            return
        self.accountant.observe_sized(
            envelope.kind, envelope.size_bytes, channel.pair
        )
        channel.send(envelope, self._dispatch)

    def _build_route(
        self, source: str, dest: str
    ) -> Tuple[Callable[[Envelope], None], Optional[FifoChannel]]:
        sink = self._sinks.get(dest)
        if sink is None:
            raise UnknownDestinationError(f"node {dest!r} is not registered")
        channel = None if source == dest else self._channel(source, dest)
        route = (sink, channel)
        self._routes.setdefault(source, {})[dest] = route
        return route

    def _deliver_local(
        self, envelope: Envelope, sink: Callable[[Envelope], None]
    ) -> None:
        sink(envelope)

    def _dispatch(self, envelope: Envelope) -> None:
        sink = self._sinks.get(envelope.dest_node)
        if sink is None:
            # Destination vanished mid-flight (node shut down): drop.
            self.fault_plan.dropped_count += 1
            return
        sink(envelope)

    def _channel(self, source: str, dest: str) -> FifoChannel:
        key = (source, dest)
        channel = self._channels.get(key)
        if channel is None:
            # The topology lookup (two site resolutions) is constant per
            # node pair, so it runs once at channel creation; the channel
            # falls back to ``_latency`` only while delay rules exist.
            channel = FifoChannel(
                self._kernel,
                source,
                dest,
                self._latency,
                base_latency=self._topology.one_way_latency(source, dest),
                delay_rules=self.fault_plan._delay_rules,
            )
            self._channels[key] = channel
        return channel

    def _latency(self, envelope: Envelope) -> float:
        base = self._topology.one_way_latency(
            envelope.source_node, envelope.dest_node
        )
        return base + self.fault_plan.extra_delay(envelope, self._kernel.now)
