"""Fault and delay injection.

The algorithm is *hard real-time* (paper Sec. 4.2): a missed deadline —
a DGC message delayed beyond the ``TTA > 2*TTB + MaxComm`` margin — can
cause a wrongful collection.  The fault plan lets tests and the TTA-margin
ablation inject exactly such delays deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set, Tuple

from repro.net.message import Envelope


@dataclass
class DelayRule:
    """Adds ``extra_delay_s`` to envelopes matched by ``predicate``
    within the [start, end) simulated-time window."""

    predicate: Callable[[Envelope], bool]
    extra_delay_s: float
    start: float = 0.0
    end: float = float("inf")

    def applies(self, envelope: Envelope, now: float) -> bool:
        return self.start <= now < self.end and self.predicate(envelope)


class FaultPlan:
    """A set of delay rules and node partitions applied by the fabric.

    Partitioned node pairs hold messages forever (modelling an undetected
    failure, which the paper notes is indistinguishable from a transient
    one for fully asynchronous collectors).

    Internal contract: ``_delay_rules`` and ``_partitioned`` are mutated
    in place and never rebound — the network fabric aliases them as
    zero-cost emptiness guards on the per-envelope hot path.
    """

    def __init__(self) -> None:
        self._delay_rules: List[DelayRule] = []
        self._partitioned: Set[Tuple[str, str]] = set()
        self.dropped_count = 0

    def add_delay(
        self,
        extra_delay_s: float,
        *,
        predicate: Optional[Callable[[Envelope], bool]] = None,
        source: Optional[str] = None,
        dest: Optional[str] = None,
        kind: Optional[str] = None,
        start: float = 0.0,
        end: float = float("inf"),
    ) -> None:
        """Register a delay rule; the keyword filters are ANDed together."""

        def match(envelope: Envelope) -> bool:
            if source is not None and envelope.source_node != source:
                return False
            if dest is not None and envelope.dest_node != dest:
                return False
            if kind is not None and envelope.kind != kind:
                return False
            if predicate is not None and not predicate(envelope):
                return False
            return True

        self._delay_rules.append(DelayRule(match, extra_delay_s, start, end))

    def partition(self, node_a: str, node_b: str) -> None:
        """Silently drop all traffic between the two nodes (both ways)."""
        self._partitioned.add((node_a, node_b))
        self._partitioned.add((node_b, node_a))

    def heal(self, node_a: str, node_b: str) -> None:
        """Remove a partition."""
        self._partitioned.discard((node_a, node_b))
        self._partitioned.discard((node_b, node_a))

    def is_partitioned(self, source: str, dest: str) -> bool:
        return (source, dest) in self._partitioned

    def extra_delay(self, envelope: Envelope, now: float) -> float:
        """Total additional delay for this envelope at time ``now``."""
        return sum(
            rule.extra_delay_s
            for rule in self._delay_rules
            if rule.applies(envelope, now)
        )
