"""Fault and delay injection.

The algorithm is *hard real-time* (paper Sec. 4.2): a missed deadline —
a DGC message delayed beyond the ``TTA > 2*TTB + MaxComm`` margin — can
cause a wrongful collection.  The fault plan lets tests and the TTA-margin
ablation inject exactly such delays deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set, Tuple

from repro.net.message import Envelope


@dataclass
class DelayRule:
    """Adds ``extra_delay_s`` to envelopes matched by ``predicate``
    within the [start, end) simulated-time window.

    ``source``/``dest``/``kind`` mirror the keyword filters the rule
    was built from (``None`` = unfiltered) and ``opaque`` records
    whether a custom predicate is involved; together they let the
    fabric decide *statically* whether a rule could ever match a given
    ``(source, dest, kind)`` stream — see :meth:`FaultPlan.may_delay` —
    so traffic no rule can touch keeps riding the batched pulse."""

    predicate: Callable[[Envelope], bool]
    extra_delay_s: float
    start: float = 0.0
    end: float = float("inf")
    source: Optional[str] = None
    dest: Optional[str] = None
    kind: Optional[str] = None
    #: A user predicate is present: the rule may match anything its
    #: static filters allow, so matchability checks stay conservative.
    opaque: bool = True

    def applies(self, envelope: Envelope, now: float) -> bool:
        return self.start <= now < self.end and self.predicate(envelope)

    def may_match(self, source: str, dest: str, kind: str) -> bool:
        """Could this rule ever apply to traffic on the given stream?
        Time windows are ignored (conservative): a currently-dormant
        rule still forces per-envelope latency evaluation, which is
        what honours the window exactly."""
        if self.source is not None and self.source != source:
            return False
        if self.dest is not None and self.dest != dest:
            return False
        if self.kind is not None and self.kind != kind:
            return False
        return True


class FaultPlan:
    """A set of delay rules and node partitions applied by the fabric.

    Partitioned node pairs hold messages forever (modelling an undetected
    failure, which the paper notes is indistinguishable from a transient
    one for fully asynchronous collectors).

    Internal contract: ``_delay_rules`` and ``_partitioned`` are mutated
    in place and never rebound — the network fabric aliases them as
    zero-cost emptiness guards on the per-envelope hot path.
    """

    def __init__(self) -> None:
        self._delay_rules: List[DelayRule] = []
        self._partitioned: Set[Tuple[str, str]] = set()
        self.dropped_count = 0

    def add_delay(
        self,
        extra_delay_s: float,
        *,
        predicate: Optional[Callable[[Envelope], bool]] = None,
        source: Optional[str] = None,
        dest: Optional[str] = None,
        kind: Optional[str] = None,
        start: float = 0.0,
        end: float = float("inf"),
    ) -> None:
        """Register a delay rule; the keyword filters are ANDed together."""

        def match(envelope: Envelope) -> bool:
            if source is not None and envelope.source_node != source:
                return False
            if dest is not None and envelope.dest_node != dest:
                return False
            if kind is not None and envelope.kind != kind:
                return False
            if predicate is not None and not predicate(envelope):
                return False
            return True

        self._delay_rules.append(
            DelayRule(
                match, extra_delay_s, start, end,
                source=source, dest=dest, kind=kind,
                opaque=predicate is not None,
            )
        )

    def may_delay(self, source: str, dest: str, kind: str) -> bool:
        """Whether *any* registered delay rule could ever apply to
        ``kind`` traffic from ``source`` to ``dest``.

        The fabric's batched lanes use this to keep pulse semantics for
        streams no rule can touch: a single ``kind``-filtered rule used
        to force the envelope-only per-event path for **all** traffic
        on the channel; now only the matchable streams fall back.
        Directly-constructed rules (no static filters) stay
        conservative: they may match anything."""
        for rule in self._delay_rules:
            if rule.may_match(source, dest, kind):
                return True
        return False

    def partition(self, node_a: str, node_b: str) -> None:
        """Silently drop all traffic between the two nodes (both ways)."""
        self._partitioned.add((node_a, node_b))
        self._partitioned.add((node_b, node_a))

    def heal(self, node_a: str, node_b: str) -> None:
        """Remove a partition."""
        self._partitioned.discard((node_a, node_b))
        self._partitioned.discard((node_b, node_a))

    def is_partitioned(self, source: str, dest: str) -> bool:
        return (source, dest) in self._partitioned

    def extra_delay(self, envelope: Envelope, now: float) -> float:
        """Total additional delay for this envelope at time ``now``."""
        return sum(
            rule.extra_delay_s
            for rule in self._delay_rules
            if rule.applies(envelope, now)
        )
