"""Simulated network fabric.

Replaces the paper's RMI-over-TCP transport on Grid'5000 with a
deterministic equivalent that preserves the two properties the DGC
actually depends on:

* per-(source node, destination node) **FIFO** delivery — DGC messages and
  responses "cannot race with application messages as they are sent over
  the same FIFO connection" (paper Sec. 3.2), and
* a bounded communication time **MaxComm** used by the
  ``TTA > 2*TTB + MaxComm`` safety margin (paper Sec. 3.1).

Bandwidth accounting mirrors the paper's instrumented-SOCKS methodology:
only cross-node payload bytes are counted; intra-node messages are free.
"""

from repro.net.message import (
    ALL_KINDS,
    KIND_APP_REPLY,
    KIND_APP_REQUEST,
    KIND_DGC_MESSAGE,
    KIND_DGC_RESPONSE,
    KIND_REGISTRY_LOOKUP,
    KIND_REGISTRY_REPLY,
    Envelope,
    WireSizeModel,
    describe_traffic,
)
from repro.net.channel import FifoChannel
from repro.net.network import Network
from repro.net.topology import Site, Topology, grid5000_topology, uniform_topology
from repro.net.accounting import BandwidthAccountant, TrafficCategory
from repro.net.faults import FaultPlan

__all__ = [
    "ALL_KINDS",
    "KIND_APP_REPLY",
    "KIND_APP_REQUEST",
    "KIND_DGC_MESSAGE",
    "KIND_DGC_RESPONSE",
    "KIND_REGISTRY_LOOKUP",
    "KIND_REGISTRY_REPLY",
    "describe_traffic",
    "Envelope",
    "WireSizeModel",
    "FifoChannel",
    "Network",
    "Site",
    "Topology",
    "grid5000_topology",
    "uniform_topology",
    "BandwidthAccountant",
    "TrafficCategory",
    "FaultPlan",
]
