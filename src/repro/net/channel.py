"""Per-(source, destination) FIFO channels.

The DGC's correctness argument (paper Sec. 3.2) leans on the fact that DGC
messages, DGC responses and application messages between two activities
share one FIFO connection and therefore never race each other.  We model a
FIFO channel per ordered node pair: delivery times are non-decreasing in
send order even when the latency model would allow overtaking.
"""
# repro: hot-path — every class slotted, no closure allocation in loops (HOT rules)

from __future__ import annotations

from typing import Callable, Optional

from repro.net.message import Envelope
from repro.sim.kernel import SimKernel


class FifoChannel:
    """One-directional FIFO pipe between two nodes.

    ``latency_fn`` returns the propagation delay for an envelope; the
    channel clamps each delivery to be no earlier than the previous one so
    FIFO order is preserved under jittery latency.
    """

    __slots__ = (
        "source",
        "dest",
        "pair",
        "_kernel",
        "_latency_fn",
        "_base_latency",
        "_delay_rules",
        "_last_delivery_time",
        "_label",
        "sent_count",
        "delivered_count",
        "acct_box",
    )

    def __init__(
        self,
        kernel: SimKernel,
        source: str,
        dest: str,
        latency_fn: Callable[[Envelope], float],
        *,
        base_latency: Optional[float] = None,
        delay_rules: Optional[list] = None,
    ) -> None:
        self._kernel = kernel
        self.source = source
        self.dest = dest
        #: Precomputed (source, dest) key for the bandwidth accountant.
        self.pair = (source, dest)
        self._latency_fn = latency_fn
        #: Fast path: when the base latency is known constant and no
        #: fault-plan delay rules exist, ``latency_fn`` is skipped
        #: entirely.  ``delay_rules`` is the fault plan's live list
        #: (mutated in place), so rules added later are honoured.
        self._base_latency = base_latency
        self._delay_rules = delay_rules
        self._last_delivery_time = 0.0
        # Precomputed once: the event label used to cost one f-string
        # allocation per transmitted envelope.
        self._label = f"deliver:{source}->{dest}"
        self.sent_count = 0
        self.delivered_count = 0
        #: Per-pair byte box lent out by the accountant (the fabric's
        #: fused DGC lane bumps it directly); reset when the network's
        #: accountant is replaced.
        self.acct_box = None

    def send(self, envelope: Envelope, sink: Callable[[Envelope], None]) -> float:
        """Schedule delivery of ``envelope`` into ``sink``; return the
        delivery time."""
        if self._base_latency is not None and not self._delay_rules:
            latency = self._base_latency
        else:
            latency = self._latency_fn(envelope)
        delivery_time = self._reserve_slot(latency)
        envelope.sent_at = self._kernel.now
        # Deliveries are never cancelled: take the event-less fast path.
        self._kernel.schedule_fire_at(
            delivery_time, self._deliver, (envelope, sink)
        )
        return delivery_time

    def stage_send(self) -> float:
        """Reserve the next FIFO delivery slot for one constant-latency
        message whose delivery event is managed *outside* the channel
        (the network's pulse batch).  Counters and the FIFO clamp behave
        exactly as :meth:`send`; the caller must bump
        ``delivered_count`` when the staged message is delivered.

        Only valid on the constant-latency fast path (no fault-plan
        delay rules) — the network falls back to :meth:`send` otherwise.
        """
        return self._reserve_slot(self._base_latency)

    def stage_send_n(self, count: int) -> float:
        """Reserve FIFO delivery slots for ``count`` constant-latency
        messages sent at the same instant (a site-pair aggregate run).

        All ``count`` messages share one delivery time: with a constant
        latency the clamp resolves identically for each of them, so one
        clamp plus a bulk counter bump is bit-identical to ``count``
        :meth:`stage_send` calls — at 1/``count`` the cost.
        """
        latency = self._base_latency
        if latency < 0:
            latency = 0.0
        delivery_time = self._kernel.now + latency
        if delivery_time < self._last_delivery_time:
            delivery_time = self._last_delivery_time
        self._last_delivery_time = delivery_time
        self.sent_count += count
        return delivery_time

    def _reserve_slot(self, latency: float) -> float:
        """Latency clamp + FIFO ordering + send accounting for the
        envelope and staged paths.

        The clamp sequence (non-negative latency, non-decreasing
        delivery time, ``sent_count``) is deliberately duplicated in two
        hot lanes that cannot afford the callee frames:
        :meth:`stage_send_n` below and the inlined block in
        :meth:`repro.net.network.Network.send_dgc_single`.  A change
        here must be mirrored in both — the bit-identical equivalence
        across delivery cores depends on all three computing the same
        delivery times and counters.
        """
        if latency < 0:
            latency = 0.0
        delivery_time = self._kernel.now + latency
        if delivery_time < self._last_delivery_time:
            delivery_time = self._last_delivery_time
        self._last_delivery_time = delivery_time
        self.sent_count += 1
        return delivery_time

    def _deliver(self, envelope: Envelope, sink: Callable[[Envelope], None]) -> None:
        self.delivered_count += 1
        sink(envelope)
