"""Per-(source, destination) FIFO channels.

The DGC's correctness argument (paper Sec. 3.2) leans on the fact that DGC
messages, DGC responses and application messages between two activities
share one FIFO connection and therefore never race each other.  We model a
FIFO channel per ordered node pair: delivery times are non-decreasing in
send order even when the latency model would allow overtaking.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.message import Envelope
from repro.sim.kernel import SimKernel


class FifoChannel:
    """One-directional FIFO pipe between two nodes.

    ``latency_fn`` returns the propagation delay for an envelope; the
    channel clamps each delivery to be no earlier than the previous one so
    FIFO order is preserved under jittery latency.
    """

    __slots__ = (
        "source",
        "dest",
        "_kernel",
        "_latency_fn",
        "_last_delivery_time",
        "sent_count",
        "delivered_count",
    )

    def __init__(
        self,
        kernel: SimKernel,
        source: str,
        dest: str,
        latency_fn: Callable[[Envelope], float],
    ) -> None:
        self._kernel = kernel
        self.source = source
        self.dest = dest
        self._latency_fn = latency_fn
        self._last_delivery_time = 0.0
        self.sent_count = 0
        self.delivered_count = 0

    def send(self, envelope: Envelope, sink: Callable[[Envelope], None]) -> float:
        """Schedule delivery of ``envelope`` into ``sink``; return the
        delivery time."""
        latency = self._latency_fn(envelope)
        if latency < 0:
            latency = 0.0
        delivery_time = self._kernel.now + latency
        if delivery_time < self._last_delivery_time:
            delivery_time = self._last_delivery_time
        self._last_delivery_time = delivery_time
        envelope.sent_at = self._kernel.now
        self.sent_count += 1
        self._kernel.schedule_at(
            delivery_time,
            self._deliver,
            envelope,
            sink,
            label=f"deliver:{self.source}->{self.dest}",
        )
        return delivery_time

    def _deliver(self, envelope: Envelope, sink: Callable[[Envelope], None]) -> None:
        self.delivered_count += 1
        sink(envelope)
