"""Bandwidth accounting, mirroring the paper's instrumented SOCKS proxy.

Paper Sec. 5: "we measured the total network traffic by using an
instrumented local SOCKS server on every machine ... our communication
numbers only include the TCP payload ... DGC messages and responses
transmitted inside a single JVM are not accounted as they are directly
passed by reference."

The accountant therefore only sees messages that actually cross a node
boundary; the network fabric never routes intra-node messages through
it.  Both fabric forms — typed pulse entries and envelopes — account
through :meth:`BandwidthAccountant.observe_sized` with the same kind
constants, so per-kind numbers are uniform across sinks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.net import kinds
from repro.net.message import Envelope


@dataclass
class TrafficCategory:
    """Aggregated bytes and message counts for one traffic kind."""

    bytes: int = 0
    messages: int = 0

    def add(self, size: int) -> None:
        self.bytes += size
        self.messages += 1


class BandwidthAccountant:
    """Counts cross-node payload bytes per traffic kind.

    Per-pair totals live in one-element list *boxes* so hot senders (the
    fabric's fused DGC lane) can hold a channel's box and bump it in
    place instead of re-probing the dict per message; :meth:`pair_box`
    lends them out, :meth:`pair_bytes` reads them back.
    """

    def __init__(self) -> None:
        self._by_kind: Dict[str, TrafficCategory] = {}
        self._by_pair: Dict[Tuple[str, str], list] = {}

    def observe(self, envelope: Envelope) -> None:
        """Record one cross-node envelope."""
        self.observe_sized(
            envelope.kind,
            envelope.size_bytes,
            (envelope.source_node, envelope.dest_node),
        )

    def observe_sized(
        self, kind: str, size: int, pair: Tuple[str, str]
    ) -> None:
        """Hot-path form of :meth:`observe`: the caller (the network
        fabric) passes the channel's precomputed pair key, avoiding a
        tuple allocation per envelope."""
        category = self._by_kind.get(kind)
        if category is None:
            category = TrafficCategory()
            self._by_kind[kind] = category
        category.bytes += size
        category.messages += 1
        box = self._by_pair.get(pair)
        if box is None:
            self._by_pair[pair] = [size]
        else:
            box[0] += size

    def pair_box(self, pair: Tuple[str, str]) -> list:
        """The live one-element byte box for ``pair`` (created empty on
        first use)."""
        box = self._by_pair.get(pair)
        if box is None:
            self._by_pair[pair] = box = [0]
        return box

    def pair_bytes(self, pair: Tuple[str, str]) -> int:
        """Cross-node payload bytes observed for one ordered node pair."""
        box = self._by_pair.get(pair)
        return box[0] if box is not None else 0

    def category(self, kind: str) -> TrafficCategory:
        """The live per-kind aggregate for ``kind``, created on first
        use.  Hot senders (the fabric's fused DGC lane) hold onto the
        returned object and bump its counters directly — the category is
        the unit of aggregation, so this is observably identical to
        :meth:`observe_sized` at a fraction of the cost."""
        category = self._by_kind.get(kind)
        if category is None:
            category = TrafficCategory()
            self._by_kind[kind] = category
        return category

    def observe_run(
        self, kind: str, size: int, pair: Tuple[str, str], count: int
    ) -> None:
        """Record ``count`` same-kind, same-size messages crossing
        ``pair`` at once (a site-pair aggregate run).  Each constituent
        is charged at its modeled wire size — totals are bit-identical
        to ``count`` :meth:`observe_sized` calls."""
        category = self._by_kind.get(kind)
        if category is None:
            category = TrafficCategory()
            self._by_kind[kind] = category
        total = size * count
        category.bytes += total
        category.messages += count
        box = self._by_pair.get(pair)
        if box is None:
            self._by_pair[pair] = [total]
        else:
            box[0] += total

    def bytes_for(self, kind: str) -> int:
        category = self._by_kind.get(kind)
        return category.bytes if category else 0

    def messages_for(self, kind: str) -> int:
        category = self._by_kind.get(kind)
        return category.messages if category else 0

    @property
    def total_bytes(self) -> int:
        """All cross-node payload bytes (the paper's headline number)."""
        return sum(category.bytes for category in self._by_kind.values())

    def _family_bytes(self, family: Tuple[str, ...]) -> int:
        by_kind = self._by_kind
        total = 0
        for kind in family:
            category = by_kind.get(kind)
            if category is not None:
                total += category.bytes
        return total

    # The family tuples are read through the kinds module (not bound at
    # import) so late-registered kinds are rolled up like describe().

    @property
    def app_bytes(self) -> int:
        """Application traffic only (requests + replies)."""
        return self._family_bytes(kinds.APP_KINDS)

    @property
    def dgc_bytes(self) -> int:
        """DGC traffic only (messages + responses)."""
        return self._family_bytes(kinds.DGC_KINDS)

    @property
    def registry_bytes(self) -> int:
        """Naming-service traffic only (every ``registry.*`` kind:
        lookups, replies, bind/unbind updates, invalidations, lease
        renewals — the family rollup comes from the kind registry)."""
        return self._family_bytes(kinds.REGISTRY_KINDS)

    @property
    def total_messages(self) -> int:
        return sum(category.messages for category in self._by_kind.values())

    def summary(self) -> Dict[str, TrafficCategory]:
        """Copy of the per-kind aggregates."""
        return {
            kind: TrafficCategory(cat.bytes, cat.messages)
            for kind, cat in self._by_kind.items()
        }

    def megabytes(self) -> float:
        """Total cross-node traffic in MB (10^6 bytes, as in the paper)."""
        return self.total_bytes / 1e6

    def describe(self) -> str:
        """One line per observed traffic kind, in the fabric's canonical
        :data:`~repro.net.kinds.ALL_KINDS` order (unknown kinds last,
        sorted), using the same kind labels every sink reports (envelope
        and typed alike) — kept uniform so ``grep 'dgc.message'`` works
        on any trace or summary."""
        # Read through the module so late-registered kinds are ordered.
        all_kinds = kinds.ALL_KINDS
        known = [kind for kind in all_kinds if kind in self._by_kind]
        extra = sorted(set(self._by_kind) - set(all_kinds))
        return "\n".join(
            f"{kind}: {self._by_kind[kind].messages} msgs, "
            f"{self._by_kind[kind].bytes} B"
            for kind in known + extra
        )
