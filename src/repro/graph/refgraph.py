"""Global snapshots of the reference graph.

An edge ``A -> B`` exists when activity A currently holds at least one
stub for B (paper Sec. 2: "references between different activities are in
fact transitive references" — our runtime's proxy table per activity *is*
that summarisation, thanks to the no-sharing property).

Snapshots also record each activity's idleness, rootness and hosting
node, which is everything the oracle and the analysis helpers need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.runtime.ids import ActivityId


@dataclass
class ReferenceGraphSnapshot:
    """An immutable view of the reference graph at one instant."""

    time: float
    edges: Dict[ActivityId, Set[ActivityId]] = field(default_factory=dict)
    idle: Dict[ActivityId, bool] = field(default_factory=dict)
    roots: Set[ActivityId] = field(default_factory=set)
    hosting: Dict[ActivityId, str] = field(default_factory=dict)

    @property
    def activity_ids(self) -> List[ActivityId]:
        return list(self.idle.keys())

    def referenced_by(self, activity_id: ActivityId) -> Set[ActivityId]:
        """Outgoing edges: the activities ``activity_id`` references."""
        return set(self.edges.get(activity_id, ()))

    def referencers_of(self, activity_id: ActivityId) -> Set[ActivityId]:
        """Incoming edges: the activities referencing ``activity_id``."""
        return {
            source
            for source, targets in self.edges.items()
            if activity_id in targets
        }

    def edge_list(self) -> List[Tuple[ActivityId, ActivityId]]:
        return [
            (source, target)
            for source, targets in self.edges.items()
            for target in sorted(targets)
        ]

    def transitive_referencers(self, activity_id: ActivityId) -> Set[ActivityId]:
        """The *reflexive* transitive closure of referencers (Eq. 1's
        ``{y | y ->* x}``)."""
        closure: Set[ActivityId] = {activity_id}
        frontier = [activity_id]
        reverse: Dict[ActivityId, Set[ActivityId]] = {}
        for source, targets in self.edges.items():
            for target in targets:
                reverse.setdefault(target, set()).add(source)
        while frontier:
            current = frontier.pop()
            for referencer in reverse.get(current, ()):  # pragma: no branch
                if referencer not in closure:
                    closure.add(referencer)
                    frontier.append(referencer)
        return closure


def snapshot_reference_graph(world) -> ReferenceGraphSnapshot:
    """Capture the current reference graph from the runtime state."""
    snapshot = ReferenceGraphSnapshot(time=world.kernel.now)
    for activity in world.live_activities():
        snapshot.idle[activity.id] = activity.is_idle()
        snapshot.hosting[activity.id] = activity.node.name
        if activity.is_root:
            snapshot.roots.add(activity.id)
        targets = set(activity.proxies.targets())
        if targets:
            snapshot.edges[activity.id] = targets
    return snapshot
