"""Ground-truth garbage oracle (paper Eq. 1).

``Garbage(x) <=> (forall y, y ->* x => Idle(y))`` — an activity is garbage
iff the reflexive transitive closure of its referencers is entirely idle.

Equivalently (and cheaper to compute for the whole world at once):
the *non*-garbage set is the forward closure, along reference edges, of
every non-idle seed.  Seeds are:

* non-idle activities (busy or root),
* activities with an in-flight application request heading their way
  (the request will make them busy),
* activities whose reference is currently in flight inside a request or
  reply (an unknown future holder may activate them — this is exactly the
  race the paper's "at least one DGC message" rule, Sec. 3.1, protects).

The oracle has a global, instantaneous view no real participant has; it
exists to *verify* the protocol, never to assist it.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.graph.refgraph import ReferenceGraphSnapshot, snapshot_reference_graph
from repro.runtime.ids import ActivityId


def compute_garbage(
    world,
    *,
    include: Iterable = (),
) -> Set[ActivityId]:
    """The set of activity ids that are garbage per Eq. 1, right now.

    ``include`` lists activities to consider *in addition to* the world's
    live set — used by the safety monitor, which runs while the activity
    being checked is already removed from the world index (its own edges
    are gone with it, which can only make other activities look *less*
    garbage, never more; its own garbage-ness is judged by who can reach
    it).
    """
    snapshot = snapshot_reference_graph(world)
    for activity in include:
        snapshot.idle.setdefault(activity.id, True)
        snapshot.hosting.setdefault(activity.id, activity.node.name)
    return garbage_of_snapshot(snapshot, pinned=world.inflight_pinned())


def garbage_of_snapshot(
    snapshot: ReferenceGraphSnapshot,
    *,
    pinned: Optional[Set[ActivityId]] = None,
) -> Set[ActivityId]:
    """Eq. 1 evaluated on a snapshot (+ externally pinned activities)."""
    seeds: Set[ActivityId] = set()
    for activity_id, idle in snapshot.idle.items():
        if not idle:
            seeds.add(activity_id)
    if pinned:
        seeds.update(pinned)
    reachable: Set[ActivityId] = set()
    frontier = [seed for seed in seeds if seed in snapshot.idle]
    reachable.update(frontier)
    while frontier:
        current = frontier.pop()
        for target in snapshot.edges.get(current, ()):  # pragma: no branch
            if target not in reachable and target in snapshot.idle:
                reachable.add(target)
                frontier.append(target)
    return {
        activity_id
        for activity_id in snapshot.idle
        if activity_id not in reachable
    }


def is_garbage(world, activity_id: ActivityId) -> bool:
    """Point query of Eq. 1 for one live activity."""
    return activity_id in compute_garbage(world)
