"""Structural analysis of reference graphs.

Provides the quantities the paper's complexity discussion (Sec. 4.3) is
phrased in — in particular ``h``, "the maximum height of all spanning
trees and reverse spanning trees", which bounds detection time by
``O(h * TTB)`` — plus the process-graph coarsening of Sec. 4.1 used when
the no-sharing property is unavailable.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.graph.refgraph import ReferenceGraphSnapshot
from repro.runtime.ids import ActivityId


def _digraph(snapshot: ReferenceGraphSnapshot) -> "nx.DiGraph":
    graph = nx.DiGraph()
    graph.add_nodes_from(snapshot.idle.keys())
    graph.add_edges_from(snapshot.edge_list())
    return graph


def strongly_connected_components(
    snapshot: ReferenceGraphSnapshot,
) -> List[Set[ActivityId]]:
    """SCCs of the reference graph, largest first."""
    components = nx.strongly_connected_components(_digraph(snapshot))
    return sorted((set(c) for c in components), key=len, reverse=True)


def spanning_tree_height(
    snapshot: ReferenceGraphSnapshot, root: ActivityId
) -> int:
    """Height of a BFS spanning tree over *forward* edges from ``root``
    (how far DGC messages must propagate the final activity clock)."""
    graph = _digraph(snapshot)
    if root not in graph:
        return 0
    lengths = nx.single_source_shortest_path_length(graph, root)
    return max(lengths.values()) if lengths else 0


def reverse_spanning_tree_height(
    snapshot: ReferenceGraphSnapshot, root: ActivityId
) -> int:
    """Height of a BFS spanning tree over *reverse* edges from ``root``
    (how far DGC responses must funnel the consensus back)."""
    graph = _digraph(snapshot).reverse(copy=False)
    if root not in graph:
        return 0
    lengths = nx.single_source_shortest_path_length(graph, root)
    return max(lengths.values()) if lengths else 0


def max_tree_height(snapshot: ReferenceGraphSnapshot) -> int:
    """The paper's ``h``: the max over all activities of both heights."""
    worst = 0
    for activity_id in snapshot.idle:
        worst = max(
            worst,
            spanning_tree_height(snapshot, activity_id),
            reverse_spanning_tree_height(snapshot, activity_id),
        )
    return worst


def process_graph(
    snapshot: ReferenceGraphSnapshot,
) -> Dict[str, Set[str]]:
    """The Sec. 4.1 coarsening: lift reference edges to hosting processes.

    ``forall (x, y) in R, (Proc(x), Proc(y)) in P`` — when the no-sharing
    property is unavailable only this graph is observable, limiting cycle
    collection to whole processes.
    """
    edges: Dict[str, Set[str]] = {}
    for source, target in snapshot.edge_list():
        source_proc = snapshot.hosting[source]
        target_proc = snapshot.hosting.get(target)
        if target_proc is None:
            continue
        edges.setdefault(source_proc, set()).add(target_proc)
    return edges


def process_graph_garbage(
    snapshot: ReferenceGraphSnapshot,
) -> Set[str]:
    """Processes collectable under the coarse graph: a process is garbage
    only if every activity reachable from any process that reaches it
    (at process granularity) is idle."""
    edges = process_graph(snapshot)
    processes = set(snapshot.hosting.values())
    busy_processes = {
        snapshot.hosting[activity_id]
        for activity_id, idle in snapshot.idle.items()
        if not idle
    }
    reachable: Set[str] = set(busy_processes)
    frontier = list(busy_processes)
    while frontier:
        current = frontier.pop()
        for target in edges.get(current, ()):  # pragma: no branch
            if target not in reachable:
                reachable.add(target)
                frontier.append(target)
    return processes - reachable
