"""Reference-graph tooling: snapshots, ground-truth oracle, analysis.

These modules sit *outside* the protocol: they read runtime state with a
global view no real participant has, providing the verification oracle
(paper Eq. 1) and the structural metrics (spanning-tree height ``h``)
used by the complexity experiments.
"""

from repro.graph.refgraph import ReferenceGraphSnapshot, snapshot_reference_graph
from repro.graph.oracle import compute_garbage, is_garbage
from repro.graph.analysis import (
    process_graph,
    reverse_spanning_tree_height,
    spanning_tree_height,
    strongly_connected_components,
)

__all__ = [
    "ReferenceGraphSnapshot",
    "snapshot_reference_graph",
    "compute_garbage",
    "is_garbage",
    "process_graph",
    "reverse_spanning_tree_height",
    "spanning_tree_height",
    "strongly_connected_components",
]
